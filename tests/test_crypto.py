"""Unit and property-based tests for the crypto layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.authenticator import InvalidSignatureError, MacAuthenticator, Signature, SignatureScheme
from repro.crypto.certificates import Certificate, QuorumTracker, ThresholdSignature
from repro.crypto.costs import CryptoCostModel
from repro.crypto.digest import digest_bytes, digest_hex, digest_to_int
from repro.crypto.keys import KeyStore


def make_keychains(count=4):
    store = KeyStore(seed=99)
    names = [f"replica:{i}" for i in range(count)] + ["client:0"]
    return {name: store.keychain(name, names) for name in names}


# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------


def test_digest_is_deterministic_and_32_bytes():
    assert digest_bytes(("a", 1)) == digest_bytes(("a", 1))
    assert len(digest_bytes(("a", 1))) == 32
    assert digest_hex(("a", 1)) == digest_bytes(("a", 1)).hex()


def test_digest_distinguishes_types_and_values():
    assert digest_bytes("1") != digest_bytes(1)
    assert digest_bytes(("a", "b")) != digest_bytes(("ab",))
    assert digest_bytes(True) != digest_bytes(1)
    assert digest_bytes(None) != digest_bytes(0)


def test_digest_of_dict_is_order_insensitive():
    assert digest_bytes({"x": 1, "y": 2}) == digest_bytes({"y": 2, "x": 1})


def test_digest_rejects_unencodable_types():
    with pytest.raises(TypeError):
        digest_bytes(object())


@given(st.tuples(st.text(), st.integers(), st.binary(max_size=64)))
@settings(max_examples=50)
def test_digest_deterministic_for_arbitrary_tuples(value):
    assert digest_bytes(value) == digest_bytes(value)
    assert 0 <= digest_to_int(digest_bytes(value)) < 2 ** 256


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=30)
def test_digest_to_int_modulo_assigns_within_range(modulus):
    value = digest_to_int(digest_bytes(("x", modulus)))
    assert 0 <= value % modulus < modulus


# ---------------------------------------------------------------------------
# signatures and MACs
# ---------------------------------------------------------------------------


def test_signature_verifies_for_correct_signer():
    chains = make_keychains()
    signer = SignatureScheme(chains["replica:0"])
    verifier = SignatureScheme(chains["replica:1"])
    signature = signer.sign(("propose", 1))
    assert verifier.verify(("propose", 1), signature)


def test_signature_fails_for_tampered_value():
    chains = make_keychains()
    signer = SignatureScheme(chains["replica:0"])
    verifier = SignatureScheme(chains["replica:1"])
    signature = signer.sign(("propose", 1))
    assert not verifier.verify(("propose", 2), signature)


def test_signature_fails_for_wrong_claimed_signer():
    chains = make_keychains()
    signer = SignatureScheme(chains["replica:0"])
    verifier = SignatureScheme(chains["replica:1"])
    signature = signer.sign(("propose", 1))
    forged = Signature(signer="replica:2", tag=signature.tag)
    assert not verifier.verify(("propose", 1), forged)


def test_signature_unknown_signer_rejected():
    chains = make_keychains()
    verifier = SignatureScheme(chains["replica:1"])
    assert not verifier.verify("x", Signature(signer="stranger", tag=b"\x00" * 32))


def test_require_valid_raises_on_bad_signature():
    chains = make_keychains()
    signer = SignatureScheme(chains["replica:0"])
    verifier = SignatureScheme(chains["replica:1"])
    signature = signer.sign("value")
    with pytest.raises(InvalidSignatureError):
        verifier.require_valid("other", signature)


def test_mac_verifies_between_the_right_pair_only():
    chains = make_keychains()
    alice = MacAuthenticator(chains["replica:0"])
    bob = MacAuthenticator(chains["replica:1"])
    carol = MacAuthenticator(chains["replica:2"])
    tag = alice.tag("replica:1", "ping")
    assert bob.verify("replica:0", "ping", tag)
    assert not carol.verify("replica:0", "ping", tag)
    assert not bob.verify("replica:0", "pong", tag)


def test_mac_unknown_peer_rejected():
    chains = make_keychains()
    alice = MacAuthenticator(chains["replica:0"])
    assert not alice.verify("stranger", "ping", b"\x00" * 32)


# ---------------------------------------------------------------------------
# quorum tracking and certificates
# ---------------------------------------------------------------------------


def test_quorum_tracker_reports_completion_exactly_once():
    tracker = QuorumTracker(quorum=3)
    statement = (1, b"digest")
    assert tracker.add_vote(statement, "a") is False
    assert tracker.add_vote(statement, "b") is False
    assert tracker.add_vote(statement, "c") is True
    assert tracker.add_vote(statement, "d") is False
    assert tracker.count(statement) == 4


def test_quorum_tracker_ignores_duplicate_voters():
    tracker = QuorumTracker(quorum=2)
    tracker.add_vote(("s",), "a")
    assert tracker.add_vote(("s",), "a") is False
    assert tracker.count(("s",)) == 1


def test_quorum_tracker_builds_certificate_from_signatures():
    chains = make_keychains()
    tracker = QuorumTracker(quorum=3)
    statement = (5, b"d")
    for i in range(3):
        scheme = SignatureScheme(chains[f"replica:{i}"])
        tracker.add_vote(statement, f"replica:{i}", scheme.sign(statement))
    certificate = tracker.certificate(statement)
    assert certificate is not None
    assert certificate.has_quorum(3)
    assert len(set(certificate.signers())) == 3


def test_quorum_tracker_certificate_requires_signature_evidence():
    tracker = QuorumTracker(quorum=2)
    tracker.add_vote(("s",), "a", None)
    tracker.add_vote(("s",), "b", None)
    assert tracker.certificate(("s",)) is None


def test_certificate_quorum_counts_distinct_signers():
    signatures = (Signature("a", b"1"), Signature("a", b"1"), Signature("b", b"2"))
    certificate = Certificate(statement=("x",), signatures=signatures)
    assert certificate.has_quorum(2)
    assert not certificate.has_quorum(3)


def test_threshold_signature_size_tracks_partials():
    partials = tuple(Signature(f"r{i}", bytes([i])) for i in range(5))
    threshold = ThresholdSignature(statement=("v",), partials=partials)
    assert threshold.size == 5


@given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=40))
@settings(max_examples=40)
def test_quorum_tracker_reaches_quorum_iff_enough_distinct_voters(quorum, voters):
    tracker = QuorumTracker(quorum=quorum)
    statement = ("stmt",)
    for index in range(voters):
        tracker.add_vote(statement, f"voter-{index}")
    assert tracker.has_quorum(statement) == (voters >= quorum)


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------


def test_signature_costs_dominate_mac_costs():
    costs = CryptoCostModel()
    assert costs.signature_verify > 50 * costs.mac_verify
    assert costs.signature_sign > 50 * costs.mac_generate


def test_cost_model_scaling_is_uniform():
    costs = CryptoCostModel().scaled(2.0)
    base = CryptoCostModel()
    assert costs.mac_verify == pytest.approx(base.mac_verify * 2)
    assert costs.signature_verify == pytest.approx(base.signature_verify * 2)


def test_cost_model_tasks_scale_with_counts():
    costs = CryptoCostModel()
    assert costs.verify_task(10).seconds == pytest.approx(10 * costs.signature_verify)
    assert costs.hash_task(1000).seconds == pytest.approx(1000 * costs.hash_per_byte)
    assert costs.handling_task(3).seconds == pytest.approx(3 * costs.message_handling)
