"""Property test for the recovery subsystem over random fault schedules.

In the spirit of ``tests/test_property_chain.py`` but at the cluster level:
seeded pseudo-random crash/partition schedules (random protocol, targets,
windows and overlap) must never leave a post-heal straggler and must never
shrink any replica's committed prefix.  Every run is deterministic in its
seed, so a failure here reproduces exactly.
"""

import random

import pytest

from repro.scenarios import FaultEvent, PROTOCOLS, ScenarioSpec, run_scenario

DURATION = 0.4
#: Last admissible heal time: leaves a post-heal window for recovery plus
#: the liveness check (the scenario harness treats later heals as persistent).
LAST_HEAL = 0.7 * DURATION


def random_schedule(rng: random.Random, num_replicas: int, clients: int):
    """1-2 timed crash/partition events against one target replica.

    All events target the same replica so a quorum of 2f + 1 non-faulty
    replicas always remains — the property under test is recovery of the
    faulted replica, not availability under quorum loss.  Overlapping
    windows are deliberately allowed (they must compose).
    """
    target = rng.randrange(num_replicas)
    rest = tuple(i for i in range(num_replicas) if i != target) + tuple(
        range(num_replicas, num_replicas + clients)
    )
    events = []
    for _ in range(rng.randint(1, 2)):
        kind = rng.choice(("crash", "partition"))
        at = round(rng.uniform(0.1, 0.35) * DURATION, 4)
        until = round(rng.uniform(0.45, 1.0) * LAST_HEAL, 4)
        if until <= at:
            at, until = round(0.1 * DURATION, 4), until + 0.1 * DURATION
        until = min(round(until, 4), round(LAST_HEAL, 4))
        if kind == "crash":
            events.append(FaultEvent(kind="crash", at=at, until=until, replicas=(target,)))
        else:
            events.append(
                FaultEvent(kind="partition", at=at, until=until, groups=(rest, (target,)))
            )
    return tuple(events)


@pytest.mark.parametrize("seed", [2, 5, 11, 17, 23, 31])
def test_random_crash_partition_schedules_never_leave_a_straggler(seed):
    rng = random.Random(seed)
    protocol = PROTOCOLS[seed % len(PROTOCOLS)]
    clients = 2
    spec = ScenarioSpec(
        name=f"random-{protocol}-s{seed}",
        protocol=protocol,
        f=1,
        clients=clients,
        duration=DURATION,
        seed=seed,
        events=random_schedule(rng, num_replicas=4, clients=clients),
    )
    assert spec.strict_liveness  # stragglers are hard failures
    result = run_scenario(spec)
    assert result.violations == (), (
        f"{spec.name} {spec.events}: {[str(v) for v in result.violations]}"
    )
    assert result.stragglers == ()
    # "Never shrink any replica's committed prefix" rides on the empty
    # violations assert above: the always-on oracle records any shrink as a
    # monotonic-frontier violation at the tick it happens.
    assert result.confirmed_transactions > 0


def test_random_schedules_are_deterministic_per_seed():
    rng_a, rng_b = random.Random(7), random.Random(7)
    schedule_a = random_schedule(rng_a, 4, 2)
    schedule_b = random_schedule(rng_b, 4, 2)
    assert schedule_a == schedule_b
