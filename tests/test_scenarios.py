"""Tests for the scenario-matrix chaos harness and the invariant oracle.

The golden-digest test runs the full smoke matrix (5 protocols x 6 fault
families at f = 1) and pins each run's deterministic summary digest, so any
behavioural drift of a protocol under attack is caught immediately.
"""

import pytest

from repro.cli import main
from repro.scenarios import (
    ATTACK_KINDS,
    PROTOCOLS,
    FaultEvent,
    InvariantOracle,
    ScenarioSpec,
    run_scenario,
    scenario_matrix,
    single_fault_spec,
    smoke_matrix,
)
from repro.sim.engine import Simulator


# ---------------------------------------------------------------------------
# spec validation and helpers
# ---------------------------------------------------------------------------


def test_fault_event_rejects_unknown_kind_and_bad_window():
    with pytest.raises(ValueError):
        FaultEvent(kind="meteor", at=0.1)
    with pytest.raises(ValueError):
        FaultEvent(kind="crash", at=0.2, until=0.1)


def test_scenario_spec_rejects_unknown_protocol_and_late_events():
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", protocol="raft")
    with pytest.raises(ValueError):
        ScenarioSpec(
            name="x",
            protocol="pbft",
            duration=0.2,
            events=(FaultEvent(kind="crash", at=0.5, replicas=(3,)),),
        )


def test_heal_time_and_fault_label():
    healing = ScenarioSpec(
        name="x",
        protocol="pbft",
        duration=1.0,
        events=(
            FaultEvent(kind="crash", at=0.1, until=0.3, replicas=(2,)),
            FaultEvent(kind="A1", at=0.2, until=0.5, replicas=(3,)),
        ),
    )
    assert healing.heal_time() == 0.5
    assert healing.fault_label() == "crash+A1"
    persistent = ScenarioSpec(
        name="y",
        protocol="pbft",
        duration=1.0,
        events=(FaultEvent(kind="crash", at=0.1, replicas=(3,)),),
    )
    assert persistent.heal_time() is None
    assert ScenarioSpec(name="z", protocol="pbft").heal_time() == 0.0


def test_heal_after_run_end_counts_as_persistent():
    # A heal scheduled past the run's end never takes effect inside the run:
    # the liveness check must be skipped, not reported as a false violation.
    spec = ScenarioSpec(
        name="late-heal",
        protocol="pbft",
        duration=0.3,
        events=(FaultEvent(kind="crash", at=0.1, until=0.6, replicas=(3,)),),
    )
    assert spec.heal_time() is None
    result = run_scenario(spec)
    assert not any(v.invariant == "liveness" for v in result.violations)


def test_scenario_spec_rejects_out_of_range_replica_ids():
    # Replica 4 of a 4-replica cluster is client 0: faulting it would test
    # nothing while reporting a clean pass.
    with pytest.raises(ValueError):
        ScenarioSpec(
            name="x",
            protocol="pbft",
            f=1,
            events=(FaultEvent(kind="crash", at=0.1, replicas=(4,)),),
        )
    with pytest.raises(ValueError):
        ScenarioSpec(
            name="x",
            protocol="pbft",
            f=1,
            events=(FaultEvent(kind="A2", at=0.1, replicas=(3,), victims=(99,)),),
        )
    # Partition groups may include client node ids (n..n+clients-1) but
    # nothing beyond them.
    ScenarioSpec(
        name="ok",
        protocol="pbft",
        f=1,
        clients=2,
        events=(FaultEvent(kind="partition", at=0.1, groups=((0, 1, 2, 4, 5), (3,))),),
    )
    with pytest.raises(ValueError):
        ScenarioSpec(
            name="x",
            protocol="pbft",
            f=1,
            clients=2,
            events=(FaultEvent(kind="partition", at=0.1, groups=((0, 1, 2, 6), (3,))),),
        )


def test_scenario_spec_rejects_targetless_fault_events():
    # A crash/attack without targets (or A2/A3 without victims) would inject
    # nothing and report a clean pass for a fault that never happened.
    with pytest.raises(ValueError):
        ScenarioSpec(
            name="x", protocol="pbft", events=(FaultEvent(kind="crash", at=0.1),)
        )
    with pytest.raises(ValueError):
        ScenarioSpec(
            name="x",
            protocol="pbft",
            events=(FaultEvent(kind="A3", at=0.1, replicas=(3,)),),
        )
    with pytest.raises(ValueError):
        ScenarioSpec(
            name="x", protocol="pbft", events=(FaultEvent(kind="partition", at=0.1),)
        )


def test_persistent_latency_window_restores_config_after_the_run():
    from repro.scenarios.runner import ScenarioRunner

    spec = ScenarioSpec(
        name="latency-forever",
        protocol="pbft",
        duration=0.2,
        events=(FaultEvent(kind="latency", at=0.05, factor=4.0),),
    )
    runner = ScenarioRunner(spec)
    config = runner.cluster.network.config
    base_delay, jitter = config.base_delay, config.jitter
    runner.run()
    # The window never healed inside the run, but the shared config must not
    # stay scaled for whoever builds the next cluster from it.
    assert config.base_delay == base_delay
    assert config.jitter == jitter


def test_single_fault_spec_shapes_the_attack():
    spec = single_fault_spec("spotless", "A2", f=2, duration=1.0)
    assert spec.resolved_replicas() == 7
    event = spec.events[0]
    assert event.kind == "A2"
    assert event.replicas == (5, 6)  # attackers: highest ids
    assert event.victims == (0, 1)  # victims: lowest ids, disjoint
    assert event.at == 0.25 and event.until == 0.5


def test_single_fault_partition_keeps_clients_with_the_majority():
    spec = single_fault_spec("pbft", "partition", f=1, clients=2)
    groups = spec.events[0].groups
    majority, isolated = groups
    assert isolated == (3,)
    # Client node ids (4, 5) ride with the majority side.
    assert set(majority) == {0, 1, 2, 4, 5}


def test_matrix_builders_cover_the_grid():
    full = scenario_matrix()
    assert len(full) == len(PROTOCOLS) * 6 * 2
    smoke = smoke_matrix()
    assert len(smoke) == len(PROTOCOLS) * 6
    assert {spec.protocol for spec in smoke} == set(PROTOCOLS)
    assert all(spec.f == 1 for spec in smoke)
    # Stragglers are hard failures across both grids from now on.
    assert all(spec.strict_liveness for spec in full + smoke)
    assert all(spec.checkpoint_interval > 0 for spec in full + smoke)
    # A direct smoke_matrix() call must build the same specs the CLI runs,
    # so its digests compare against GOLDEN_SMOKE (pinned at duration 0.4).
    assert all(spec.duration == 0.4 for spec in smoke)
    labels = {spec.fault_label() for spec in smoke}
    assert set(ATTACK_KINDS) <= labels and {"crash", "partition"} <= labels


# ---------------------------------------------------------------------------
# invariant oracle unit tests (stub clusters)
# ---------------------------------------------------------------------------


class StubConfig:
    weak_quorum = 2


class StubReplica:
    def __init__(self, node_id, committed=None, executed=None):
        self.node_id = node_id
        self.config = StubConfig()
        self._committed = committed or {}
        self._executed = executed or []
        self.executed_transactions = len(self._executed)

    def committed_map(self):
        return dict(self._committed)

    def executed_transaction_digests(self):
        return list(self._executed)


class StubClient:
    def __init__(self, client_id, confirmed_digests=()):
        self.client_id = client_id
        self.confirmed_digests = list(confirmed_digests)
        self.confirmed_transactions = len(self.confirmed_digests)


class StubCluster:
    def __init__(self, replicas, clients=()):
        self.simulator = Simulator()
        self.replicas = list(replicas)
        self.clients = list(clients)


def test_oracle_detects_agreement_violation():
    cluster = StubCluster(
        [
            StubReplica(0, committed={(0, 0): b"a"}),
            StubReplica(1, committed={(0, 0): b"b"}),
        ]
    )
    oracle = InvariantOracle(cluster)
    oracle.check_now()
    assert any(v.invariant == "agreement" for v in oracle.violations)


def test_oracle_detects_fork_in_executed_order():
    cluster = StubCluster(
        [
            StubReplica(0, executed=[b"t1", b"t2", b"t3"]),
            StubReplica(1, executed=[b"t1", b"tX"]),
        ]
    )
    oracle = InvariantOracle(cluster)
    oracle.check_now()
    assert any(v.invariant == "no-fork" for v in oracle.violations)
    # A persistent fork re-triggers on every tick but is one defect.
    oracle.check_now()
    oracle.check_now()
    assert len([v for v in oracle.violations if v.invariant == "no-fork"]) == 1


def test_oracle_accepts_lagging_prefixes():
    cluster = StubCluster(
        [
            StubReplica(0, committed={(0, 0): b"a"}, executed=[b"t1", b"t2"]),
            StubReplica(1, committed={(0, 0): b"a"}, executed=[b"t1"]),
        ]
    )
    oracle = InvariantOracle(cluster)
    oracle.check_now()
    assert oracle.ok


def test_oracle_detects_shrinking_frontier():
    replica = StubReplica(0, executed=[b"t1", b"t2"])
    cluster = StubCluster([replica])
    oracle = InvariantOracle(cluster)
    oracle.check_now()
    replica._executed = [b"t1"]  # a rollback must be flagged
    oracle.check_now()
    assert any(v.invariant == "monotonic-frontier" for v in oracle.violations)


class StubReplicaNoHistory:
    def __init__(self, node_id):
        self.node_id = node_id
        self.config = StubConfig()
        self.executed_transactions = 0


def test_oracle_durability_survives_one_nonconforming_replica():
    # One replica without executed_transaction_digests() must not silently
    # disable the durability check for the whole cluster.
    cluster = StubCluster(
        [StubReplica(0, executed=[b"t1"]), StubReplicaNoHistory(1), StubReplica(2, executed=[])],
        clients=[StubClient(0, confirmed_digests=[b"ghost"])],
    )
    oracle = InvariantOracle(cluster)
    oracle.final_check(heal_time=None)
    assert any(v.invariant == "inform-durability" for v in oracle.violations)


def test_oracle_detects_unexecuted_confirmations():
    cluster = StubCluster(
        [StubReplica(0, executed=[b"t1"]), StubReplica(1, executed=[b"t1"])],
        clients=[StubClient(0, confirmed_digests=[b"ghost"])],
    )
    oracle = InvariantOracle(cluster)
    oracle.final_check(heal_time=None)
    assert any(v.invariant == "inform-durability" for v in oracle.violations)


def test_oracle_requires_weak_quorum_of_copies():
    # Confirmed digest executed by only one of two replicas: below weak quorum.
    cluster = StubCluster(
        [StubReplica(0, executed=[b"t1"]), StubReplica(1, executed=[])],
        clients=[StubClient(0, confirmed_digests=[b"t1"])],
    )
    oracle = InvariantOracle(cluster)
    oracle.final_check(heal_time=None)
    assert any(v.invariant == "inform-durability" for v in oracle.violations)


def test_oracle_detects_stalled_liveness_after_heal():
    replica = StubReplica(0, executed=[b"t1"])
    cluster = StubCluster([replica])
    oracle = InvariantOracle(cluster, check_interval=0.1)
    oracle.arm(1.0)
    cluster.simulator.run_for(1.0)  # samples tick but progress never moves
    oracle.final_check(heal_time=0.5)
    assert any(v.invariant == "liveness" for v in oracle.violations)


def test_oracle_liveness_passes_when_progress_resumes():
    replica = StubReplica(0, executed=[b"t1"])
    cluster = StubCluster([replica])
    oracle = InvariantOracle(cluster, check_interval=0.1)
    oracle.arm(1.0)
    cluster.simulator.schedule(
        0.8, lambda: setattr(replica, "executed_transactions", 5), label="progress"
    )
    cluster.simulator.run_for(1.0)
    oracle.final_check(heal_time=0.5)
    assert oracle.ok


# ---------------------------------------------------------------------------
# seeded end-to-end runs: determinism and golden digests
# ---------------------------------------------------------------------------

# Deterministic summary digests of the smoke matrix (duration 0.4, seed 1),
# recorded with the recovery subsystem active (checkpoint_interval=8) and
# strict liveness on.  Regenerate with: python -m repro scenario --matrix smoke
GOLDEN_SMOKE = {
    ("spotless", "A1"): "e048207bd370",
    ("spotless", "A2"): "efb5b2248545",
    ("spotless", "A3"): "e76fb133daac",
    ("spotless", "A4"): "c5ae3beeb27d",
    ("spotless", "crash"): "adc1adf1e1db",
    ("spotless", "partition"): "cd28eaf66d82",
    ("pbft", "A1"): "418756454b39",
    ("pbft", "A2"): "656a15e94f9d",
    ("pbft", "A3"): "13671144afb7",
    ("pbft", "A4"): "65066f756b92",
    ("pbft", "crash"): "947d867b4a18",
    ("pbft", "partition"): "99cfafc352e4",
    ("rcc", "A1"): "28943d64d228",
    ("rcc", "A2"): "a8756ba018c0",
    ("rcc", "A3"): "710fe417434f",
    ("rcc", "A4"): "b42df45a92de",
    ("rcc", "crash"): "6b48867f7ea8",
    ("rcc", "partition"): "fb79f5e568a3",
    ("hotstuff", "A1"): "f86794d31ef9",
    ("hotstuff", "A2"): "7b3fad2ec75c",
    ("hotstuff", "A3"): "b82adfaef396",
    ("hotstuff", "A4"): "618ec0b039de",
    ("hotstuff", "crash"): "ea228cd968f3",
    ("hotstuff", "partition"): "ea13418f0d32",
    ("narwhal-hs", "A1"): "9ceac4e3e113",
    ("narwhal-hs", "A2"): "407b2daf76ba",
    ("narwhal-hs", "A3"): "a69d63e40c06",
    ("narwhal-hs", "A4"): "1f34605e66e8",
    ("narwhal-hs", "crash"): "40b9d65dd0e7",
    ("narwhal-hs", "partition"): "d47e23b98e41",
}

SMOKE_FAULTS = ("A1", "A2", "A3", "A4", "crash", "partition")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_smoke_matrix_clean_and_golden(protocol):
    """Every fault family leaves zero invariant violations and a pinned digest."""
    for fault in SMOKE_FAULTS:
        result = run_scenario(single_fault_spec(protocol, fault, f=1, duration=0.4, seed=1))
        assert result.violations == (), (
            f"{protocol}/{fault}: {[str(v) for v in result.violations]}"
        )
        assert result.confirmed_transactions > 0
        assert result.summary_digest() == GOLDEN_SMOKE[(protocol, fault)], (
            f"{protocol}/{fault} drifted"
        )


def test_same_seed_gives_identical_summary():
    spec = single_fault_spec("hotstuff", "A3", f=1, duration=0.3, seed=9)
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert first.summary_digest() == second.summary_digest()
    assert first.committed_per_replica == second.committed_per_replica
    assert first.confirmed_transactions == second.confirmed_transactions


def test_different_seed_changes_the_run():
    base = run_scenario(single_fault_spec("hotstuff", "A4", f=1, duration=0.3, seed=1))
    other = run_scenario(single_fault_spec("hotstuff", "A4", f=1, duration=0.3, seed=2))
    assert base.summary_digest() != other.summary_digest()


def test_oracle_checks_actually_ran():
    result = run_scenario(single_fault_spec("hotstuff", "crash", f=1, duration=0.3, seed=1))
    assert result.checks_run >= 5  # periodic ticks plus the final check


def test_scenario_runner_enables_digest_recording_but_benchmarks_skip_it():
    from repro.scenarios.runner import ScenarioRunner

    runner = ScenarioRunner(single_fault_spec("pbft", "A4", f=1, duration=0.2, seed=1))
    runner.run()
    assert any(client.confirmed_digests for client in runner.cluster.clients)
    # A plain benchmark cluster keeps the per-digest log off.
    from repro.bench.cluster import SimulatedCluster

    cluster = SimulatedCluster.for_protocol("pbft", num_replicas=4, clients=2, batch_size=4)
    cluster.run(duration=0.1)
    assert all(not client.confirmed_digests for client in cluster.clients)
    assert any(client.confirmed_transactions for client in cluster.clients)


def test_strict_liveness_is_the_default_and_recovery_clears_stragglers():
    # Scenario specs run under strict liveness now: the checkpoint/state-
    # transfer subsystem catches the healed replica back up, so the crash
    # cell that used to report straggler 3 must be clean end to end.
    spec = single_fault_spec("hotstuff", "crash", f=1, duration=0.3, seed=1)
    assert spec.strict_liveness
    result = run_scenario(spec)
    assert result.stragglers == ()
    assert result.violations == ()
    assert result.row()["stragglers"] == "-"


def test_chain_sync_recovers_the_healed_replica_without_checkpoints():
    from dataclasses import replace

    # checkpoint_interval=0 turns the recovery subsystem off.  This cell
    # used to pin the resulting wedge (straggler 3, a hard strict-liveness
    # failure); the chain-sync retry + payload pull now catch the healed
    # replica up on their own, and the counters prove that that machinery —
    # not checkpoints — did the work.
    spec = replace(
        single_fault_spec("hotstuff", "crash", f=1, duration=0.3, seed=1),
        checkpoint_interval=0,
    )
    result = run_scenario(spec)
    assert result.stragglers == ()
    assert result.violations == ()
    assert result.counters["chain_syncs_requested"] > 0
    assert result.counters["payload_pulls"] > 0


# ---------------------------------------------------------------------------
# crash-then-heal straggler regressions: every protocol's healed replica
# converges back to the cluster within the liveness window
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_then_heal_replica_converges(protocol):
    spec = single_fault_spec(protocol, "crash", f=1, duration=0.4, seed=3)
    result = run_scenario(spec)
    assert result.violations == (), [str(v) for v in result.violations]
    assert result.stragglers == ()
    # Convergence, not just progress: the healed replica's ledger depth ends
    # within one checkpoint window (plus in-flight slots) of the deepest
    # replica, so state transfer actually caught it up to the cluster.
    depths = result.committed_per_replica
    lag = max(depths) - min(depths)
    assert lag <= 2 * spec.checkpoint_interval * spec.batch_size, (
        f"{protocol}: healed replica still {lag} transactions behind {depths}"
    )


def test_crash_then_heal_ledger_digests_are_prefix_consistent():
    # Beyond counts: the healed replica's executed ledger must be a prefix
    # of the deepest replica's (same transactions, same order).
    from repro.scenarios.runner import ScenarioRunner

    runner = ScenarioRunner(single_fault_spec("pbft", "crash", f=1, duration=0.4, seed=3))
    result = runner.run()
    assert result.violations == ()
    ledgers = [replica.executed_transaction_digests() for replica in runner.cluster.replicas]
    deepest = max(ledgers, key=len)
    for ledger in ledgers:
        assert ledger == deepest[: len(ledger)]
        assert len(ledger) > 0


# ---------------------------------------------------------------------------
# dispatch integration: cross-process determinism and JSON replayability
# ---------------------------------------------------------------------------


def test_dispatcher_worker_reproduces_in_process_digest():
    # The same spec run in this process and through a Dispatcher worker
    # pool must be indistinguishable — this is what makes the parallel
    # matrix byte-identical to the serial one.
    import multiprocessing

    from repro.dispatch import Dispatcher

    spec = single_fault_spec("rcc", "A2", f=1, duration=0.3, seed=7)
    in_process = run_scenario(spec)
    workers = 2 if "fork" in multiprocessing.get_all_start_methods() else 1
    dispatched = Dispatcher(workers=workers).run("scenario", [spec, spec])
    for result in dispatched:
        assert result.summary_digest() == in_process.summary_digest()
        assert result.committed_per_replica == in_process.committed_per_replica
        assert result.row() == in_process.row()


def test_spec_json_roundtrip_rerun_reproduces_the_digest():
    # serialize -> deserialize -> re-run must land on the original digest;
    # this is the property that makes archived fuzz failures replayable.
    import json

    from repro.dispatch import fuzz_spec

    for spec in (
        single_fault_spec("hotstuff", "crash", f=1, duration=0.3, seed=5),
        fuzz_spec(11, 0, duration=0.2),  # multi-fault script included
    ):
        original = run_scenario(spec)
        revived = ScenarioSpec.from_json_dict(json.loads(json.dumps(spec.to_json_dict())))
        assert revived == spec
        replayed = run_scenario(revived)
        assert replayed.summary_digest() == original.summary_digest()
        assert replayed.committed_per_replica == original.committed_per_replica


def test_scenario_result_json_roundtrip_renders_identically():
    result = run_scenario(single_fault_spec("pbft", "A4", f=1, duration=0.2, seed=1))
    import json

    from repro.scenarios import ScenarioResult

    revived = ScenarioResult.from_json_dict(json.loads(json.dumps(result.to_json_dict())))
    assert revived.row() == result.row()
    assert revived.summary_digest() == result.summary_digest()
    assert revived.violations == result.violations


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_single_scenario_runs_clean(capsys):
    exit_code = main(
        ["scenario", "--protocol", "hotstuff", "--fault", "A3", "--duration", "0.3"]
    )
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "hotstuff-A3-f1-s1" in output
    assert "all 1 scenarios clean" in output


def test_cli_rejects_unknown_fault(capsys):
    assert main(["scenario", "--fault", "meteor"]) == 2
    assert "unknown fault" in capsys.readouterr().err


def test_cli_rejects_unknown_protocol(capsys):
    assert main(["scenario", "--protocol", "raft", "--fault", "A1"]) == 2
    assert "unknown protocol" in capsys.readouterr().err


def test_cli_rejects_single_scenario_flags_with_matrix(capsys):
    # `--matrix smoke --f 2` must not silently run the f=1 grid.
    assert main(["scenario", "--matrix", "smoke", "--f", "2"]) == 2
    err = capsys.readouterr().err
    assert "--matrix selects the whole grid" in err and "--f" in err
