"""Tests for the failure-triage subsystem (`repro/triage/`).

Covers the three pieces the subsystem composes — canonical failure
signatures, the deterministic delta-debugging minimizer, and the
regression corpus with its replay classification — plus the CLI verbs.

The cheap, reliably failing scenario used throughout: a crash window with
`checkpoint_interval=0` (recovery disabled) under strict liveness wedges
the crashed replica as a post-heal straggler in ~0.2 simulated seconds.
"""

import json
from dataclasses import replace

import pytest

from repro.dispatch import ResultCache
from repro.scenarios import (
    FaultEvent,
    InvariantViolation,
    ScenarioResult,
    ScenarioSpec,
    canonical_violation_kinds,
    drop_event,
    replace_event,
    run_scenario,
    single_fault_spec,
    try_spec,
)
from repro.triage import (
    Corpus,
    CorpusEntry,
    EXPECT_FAILING,
    EXPECT_PASSING,
    FailureSignature,
    MinimizationResult,
    classify,
    minimize_spec,
    minimized_name,
    replay_corpus,
    signature_of,
)


def wedge_spec(seed: int = 1) -> ScenarioSpec:
    """A cheap spec that reliably fails: crash + recovery disabled."""
    return replace(
        single_fault_spec("pbft", "crash", f=1, duration=0.2, seed=seed),
        checkpoint_interval=0,
    )


def fake_result(spec, violations=(), stragglers=()):
    """A ScenarioResult shell for tests that never run the simulator."""
    return ScenarioResult(
        spec=spec,
        confirmed_transactions=0,
        executed_transactions=0,
        committed_per_replica=(0,) * spec.resolved_replicas(),
        violations=tuple(violations),
        checks_run=1,
        stragglers=tuple(stragglers),
    )


def liveness_violation(detail="stuck"):
    return InvariantViolation(invariant="liveness-straggler", time=0.2, detail=detail)


# ---------------------------------------------------------------------------
# spec mutation helpers
# ---------------------------------------------------------------------------


def test_try_spec_returns_none_instead_of_raising():
    spec = wedge_spec()
    assert try_spec(spec, duration=0.5).duration == 0.5
    assert try_spec(spec, duration=-1.0) is None
    # Shrinking the run under the event's start time invalidates the spec.
    assert try_spec(spec, duration=0.01) is None


def test_drop_and_replace_event_helpers():
    spec = wedge_spec()
    assert drop_event(spec, 0).events == ()
    narrowed = replace_event(spec, 0, at=0.08)
    assert narrowed.events[0].at == 0.08
    assert narrowed.events[0].until == spec.events[0].until
    # A heal before the start is invalid -> None, not an exception.
    assert replace_event(spec, 0, at=0.15) is None


# ---------------------------------------------------------------------------
# signatures
# ---------------------------------------------------------------------------


def test_canonical_violation_kinds_sorts_and_dedups():
    violations = [
        InvariantViolation("liveness-straggler", 0.4, "replica 3"),
        InvariantViolation("agreement", 0.1, "slot 5"),
        InvariantViolation("liveness-straggler", 0.4, "replica 1"),
    ]
    assert canonical_violation_kinds(violations) == ("agreement", "liveness-straggler")


def test_signature_of_projects_kinds_and_stragglers_not_timestamps():
    spec = wedge_spec()
    early = fake_result(spec, [liveness_violation("replica 3 at 0.1s")], stragglers=(3,))
    late = fake_result(spec, [liveness_violation("replica 3 at 0.3s")], stragglers=(3,))
    assert signature_of(early) == signature_of(late)
    other = fake_result(spec, [liveness_violation()], stragglers=(1, 3))
    assert signature_of(early) != signature_of(other)
    assert signature_of(fake_result(spec)) is None


def test_signature_roundtrip_and_key_stability():
    signature = FailureSignature(
        protocol="rcc", invariants=("liveness", "liveness-straggler"), stragglers=(0, 1, 2, 3)
    )
    blob = json.dumps(signature.to_json_dict())
    restored = FailureSignature.from_json_dict(json.loads(blob))
    assert restored == signature
    assert restored.key() == signature.key()
    assert len(signature.key()) == 12
    assert "rcc" in signature.label()
    with pytest.raises(ValueError):
        FailureSignature(protocol="rcc", invariants=())
    bad = signature.to_json_dict()
    bad["format"] = 99
    with pytest.raises(ValueError):
        FailureSignature.from_json_dict(bad)


# ---------------------------------------------------------------------------
# oracle dedup (satellite: O(1) seen-set)
# ---------------------------------------------------------------------------


def test_oracle_record_dedups_identical_violations():
    from repro.bench.cluster import SimulatedCluster
    from repro.scenarios.oracle import InvariantOracle

    cluster = SimulatedCluster.for_protocol("pbft", num_replicas=4, seed=1)
    oracle = InvariantOracle(cluster)
    oracle._record("agreement", "slot 1 diverged")
    oracle._record("agreement", "slot 1 diverged")
    oracle._record("agreement", "slot 2 diverged")
    assert len(oracle.violations) == 2


# ---------------------------------------------------------------------------
# minimizer
# ---------------------------------------------------------------------------


def test_minimizer_with_fake_oracle_keeps_only_the_relevant_window():
    # Three windows; the fake oracle fails exactly when the crash window is
    # still present.  The minimizer must drop both attack windows and keep
    # the crash, regardless of simulation details.
    events = (
        FaultEvent(kind="A1", at=0.02, until=0.06, replicas=(3,)),
        FaultEvent(kind="crash", at=0.05, until=0.1, replicas=(3,)),
        FaultEvent(kind="latency", at=0.03, until=0.08, factor=4.0),
    )
    spec = replace(wedge_spec(), events=events)
    runs = []

    def fake_evaluate(specs):
        runs.append(len(specs))
        out = []
        for candidate in specs:
            if any(event.kind == "crash" for event in candidate.events):
                out.append(fake_result(candidate, [liveness_violation()], stragglers=(3,)))
            else:
                out.append(fake_result(candidate))
        return out

    result = minimize_spec(spec, evaluate=fake_evaluate)
    assert result.reproduced
    assert [event.kind for event in result.minimized.events] == ["crash"]
    assert result.attempts == sum(runs)
    assert result.reductions >= 2
    assert result.minimized.name == spec.name + "-min"
    # Same spec, same fake oracle: byte-identical minimization.
    again = minimize_spec(spec, evaluate=fake_evaluate)
    assert json.dumps(again.to_json_dict(), sort_keys=True) == json.dumps(
        result.to_json_dict(), sort_keys=True
    )


def test_minimizer_is_deterministic_and_parallel_equals_serial(tmp_path):
    spec = wedge_spec()
    cache_root = tmp_path / "cache"
    serial = minimize_spec(spec, cache=ResultCache(root=cache_root, fingerprint="pin"))
    assert serial.reproduced
    # Strictly narrower: the crash window shrank and the run got shorter.
    original_window = spec.events[0].until - spec.events[0].at
    minimized_window = serial.minimized.events[0].until - serial.minimized.events[0].at
    assert minimized_window < original_window
    assert serial.minimized.duration < spec.duration
    # The minimized spec still reproduces the same signature when run alone.
    assert signature_of(run_scenario(serial.minimized)) == serial.signature
    # Re-run serially (cache-served) and with two workers: byte-identical.
    blob = json.dumps(serial.to_json_dict(), sort_keys=True)
    cached = minimize_spec(spec, cache=ResultCache(root=cache_root, fingerprint="pin"))
    assert json.dumps(cached.to_json_dict(), sort_keys=True) == blob
    parallel = minimize_spec(
        spec, workers=2, cache=ResultCache(root=cache_root, fingerprint="pin")
    )
    assert json.dumps(parallel.to_json_dict(), sort_keys=True) == blob


def test_minimizer_reports_clean_specs_as_not_reproduced():
    # With checkpointing enabled the crash scenario recovers cleanly.
    spec = single_fault_spec("pbft", "crash", f=1, duration=0.2, seed=1)
    result = minimize_spec(spec, cache=None)
    assert not result.reproduced
    assert result.minimized == spec
    assert result.attempts == 1 and result.reductions == 0


def test_minimization_result_json_roundtrip():
    spec = wedge_spec()
    result = MinimizationResult(
        original=spec,
        minimized=replace(spec, name=minimized_name(spec.name)),
        signature=FailureSignature(protocol="pbft", invariants=("liveness-straggler",), stragglers=(3,)),
        attempts=7,
        reductions=2,
    )
    blob = json.dumps(result.to_json_dict(), sort_keys=True)
    assert MinimizationResult.from_json_dict(json.loads(blob)) == result
    assert minimized_name("x") == "x-min"
    assert minimized_name("x-min") == "x-min"


def test_minimizer_respects_the_attempt_budget():
    spec = wedge_spec()

    def failing_evaluate(specs):
        return [fake_result(s, [liveness_violation()], stragglers=(3,)) for s in specs]

    result = minimize_spec(spec, evaluate=failing_evaluate, max_attempts=3)
    assert result.attempts <= 3
    with pytest.raises(ValueError):
        minimize_spec(spec, evaluate=failing_evaluate, max_attempts=0)


# ---------------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------------


def make_entry(name, spec, signature, expected=EXPECT_FAILING):
    return CorpusEntry(name=name, expected=expected, spec=spec, signature=signature)


def wedge_signature():
    return FailureSignature(protocol="pbft", invariants=("liveness-straggler",), stragglers=(3,))


def test_corpus_entry_roundtrip_and_validation():
    entry = make_entry("wedge", wedge_spec(), wedge_signature())
    blob = json.dumps(entry.to_json_dict())
    assert CorpusEntry.from_json_dict(json.loads(blob)) == entry
    with pytest.raises(ValueError):
        make_entry("wedge", wedge_spec(), wedge_signature(), expected="maybe")
    bad = entry.to_json_dict()
    bad["format"] = 99
    with pytest.raises(ValueError):
        CorpusEntry.from_json_dict(bad)


def test_corpus_ingest_dedups_by_signature(tmp_path):
    corpus = Corpus(tmp_path / "corpus")
    entry, created = corpus.ingest(wedge_spec(), wedge_signature(), source="a.json")
    assert created and entry.expected == EXPECT_FAILING
    assert corpus.path_for(entry.name).exists()
    # A second finding with the same signature is deduplicated...
    duplicate, created = corpus.ingest(wedge_spec(seed=2), wedge_signature(), source="b.json")
    assert not created and duplicate.name == entry.name
    assert len(corpus.entries()) == 1
    # ...but the same name with a different signature gets uniquified.
    other_signature = FailureSignature(
        protocol="pbft", invariants=("liveness-straggler",), stragglers=(1,)
    )
    distinct, created = corpus.ingest(wedge_spec(), other_signature, source="c.json")
    assert created and distinct.name != entry.name
    assert len(corpus.entries()) == 2


def test_corpus_ingest_repins_recurrence_of_a_promoted_signature(tmp_path):
    # A signature matching only a *promoted* (expected-passing) entry is a
    # recurrence of a fixed bug, not a duplicate: it must be pinned again
    # as still-failing so CI sees it.
    corpus = Corpus(tmp_path / "corpus")
    entry, _ = corpus.ingest(wedge_spec(), wedge_signature())
    corpus.promote(entry.name)
    recurrence, created = corpus.ingest(wedge_spec(seed=2), wedge_signature(), source="new.json")
    assert created and recurrence.expected == EXPECT_FAILING
    assert recurrence.name != entry.name
    assert len(corpus.entries()) == 2


def test_corpus_promote_flips_expectation(tmp_path):
    corpus = Corpus(tmp_path / "corpus")
    entry, _ = corpus.ingest(wedge_spec(), wedge_signature())
    promoted = corpus.promote(entry.name)
    assert promoted.expected == EXPECT_PASSING
    assert corpus.entries()[0].expected == EXPECT_PASSING
    with pytest.raises(KeyError):
        corpus.promote("no-such-entry")


def test_corrupt_corpus_entry_is_a_hard_error(tmp_path):
    root = tmp_path / "corpus"
    corpus = Corpus(root)
    corpus.ingest(wedge_spec(), wedge_signature())
    (root / "broken.json").write_text('{"format": 1, "name": "broken"}')
    with pytest.raises(ValueError, match="corrupt corpus entry"):
        corpus.entries()


def test_classify_covers_all_status_transitions():
    spec = wedge_spec()
    signature = wedge_signature()
    failing = make_entry("open-bug", spec, signature)
    clean = fake_result(spec)
    same = fake_result(spec, [liveness_violation()], stragglers=(3,))
    different = fake_result(spec, [liveness_violation()], stragglers=(1, 3))
    assert classify(failing, same) == "still-failing"
    assert classify(failing, clean) == "fixed"
    assert classify(failing, different) == "signature-changed"
    promoted = make_entry("closed-bug", spec, signature, expected=EXPECT_PASSING)
    assert classify(promoted, clean) == "passing"
    assert classify(promoted, same) == "regressed"


def test_replay_corpus_classifies_real_runs(tmp_path):
    corpus = Corpus(tmp_path / "corpus")
    # Entry 1: the wedge, pinned with its true signature -> still-failing.
    wedge = wedge_spec()
    true_signature = signature_of(run_scenario(wedge))
    corpus.add(make_entry("a-wedge", wedge, true_signature))
    # Entry 2: a recovering spec pinned as failing -> fixed.
    recovering = single_fault_spec("pbft", "crash", f=1, duration=0.2, seed=1)
    corpus.add(make_entry("b-fixed", recovering, true_signature))
    # Entry 3: the wedge pinned with a doctored signature -> signature-changed.
    doctored = FailureSignature(
        protocol="pbft", invariants=("liveness-straggler",), stragglers=(0,)
    )
    corpus.add(make_entry("c-drifted", wedge, doctored))
    cache = ResultCache(root=tmp_path / "cache", fingerprint="pin")
    outcomes = replay_corpus(corpus, cache=cache)
    assert [outcome.entry.name for outcome in outcomes] == ["a-wedge", "b-fixed", "c-drifted"]
    assert [outcome.status for outcome in outcomes] == [
        "still-failing",
        "fixed",
        "signature-changed",
    ]
    assert [outcome.ok for outcome in outcomes] == [True, True, False]
    assert replay_corpus(Corpus(tmp_path / "missing")) == []


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------


def write_archive(path, spec):
    path.write_text(json.dumps({"spec": spec.to_json_dict()}, indent=2, sort_keys=True))
    return str(path)


def test_cli_triage_minimize_emits_and_ingests(tmp_path, monkeypatch, capsys):
    from repro import cli

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    archive = write_archive(tmp_path / "wedge.json", wedge_spec())
    corpus_dir = tmp_path / "corpus"
    exit_code = cli.main(
        ["triage", "minimize", archive, "--ingest", "--corpus-dir", str(corpus_dir)]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "minimized" in captured.err and "signature:" in captured.err
    assert "pinned as corpus entry" in captured.err
    minimized = ScenarioSpec.from_json_dict(json.loads(captured.out))
    assert minimized.duration < 0.2
    entries = Corpus(corpus_dir).entries()
    assert len(entries) == 1 and entries[0].expected == EXPECT_FAILING
    # Re-ingesting the same signature reports the duplicate.
    assert cli.main(
        ["triage", "minimize", archive, "--ingest", "--corpus-dir", str(corpus_dir)]
    ) == 0
    assert "already pinned" in capsys.readouterr().err
    assert len(Corpus(corpus_dir).entries()) == 1


def test_cli_triage_minimize_handles_clean_and_bad_input(tmp_path, monkeypatch, capsys):
    from repro import cli

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert cli.main(["triage", "minimize", str(tmp_path / "missing.json")]) == 2
    assert "cannot minimize" in capsys.readouterr().err
    clean = write_archive(
        tmp_path / "clean.json", single_fault_spec("pbft", "crash", f=1, duration=0.2, seed=1)
    )
    assert cli.main(["triage", "minimize", clean]) == 1
    assert "ran clean" in capsys.readouterr().err
    assert cli.main(["triage", "minimize", clean, "--max-attempts", "0"]) == 2
    assert "--max-attempts" in capsys.readouterr().err
    assert cli.main(["triage", "minimize", clean, "--workers", "-1"]) == 2
    assert "--workers" in capsys.readouterr().err
    # An unwritable --output must not discard the minimized spec.
    wedge = write_archive(tmp_path / "wedge.json", wedge_spec())
    assert cli.main(
        ["triage", "minimize", wedge, "--output", str(tmp_path / "no-such-dir" / "out.json")]
    ) == 1
    captured = capsys.readouterr()
    assert "cannot write" in captured.err
    assert json.loads(captured.out)["protocol"] == "pbft"  # spec still emitted


def test_cli_triage_corpus_replay_and_promote(tmp_path, monkeypatch, capsys):
    from repro import cli

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    corpus_dir = tmp_path / "corpus"
    # Empty corpus: informative, exit 0 (CI-safe before the first finding).
    assert cli.main(["triage", "corpus", "--corpus-dir", str(corpus_dir)]) == 0
    assert "is empty" in capsys.readouterr().out
    corpus = Corpus(corpus_dir)
    wedge = wedge_spec()
    true_signature = signature_of(run_scenario(wedge))
    corpus.add(make_entry("wedge", wedge, true_signature))
    fixed = single_fault_spec("pbft", "crash", f=1, duration=0.2, seed=1)
    corpus.add(make_entry("was-fixed", fixed, true_signature))
    exit_code = cli.main(["triage", "corpus", "--corpus-dir", str(corpus_dir)])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "still-failing" in captured.out and "fixed" in captured.out
    # The summary must not claim everything behaves as pinned when an
    # entry just went clean.
    assert "await promotion" in captured.out
    assert "--promote was-fixed" in captured.err
    # Promote the fixed entry; the corpus then replays fully green.
    assert cli.main(
        ["triage", "corpus", "--corpus-dir", str(corpus_dir), "--promote", "was-fixed"]
    ) == 0
    assert "promoted" in capsys.readouterr().out
    assert cli.main(["triage", "corpus", "--corpus-dir", str(corpus_dir)]) == 0
    assert "behave as pinned" in capsys.readouterr().out
    assert cli.main(
        ["triage", "corpus", "--corpus-dir", str(corpus_dir), "--promote", "nope"]
    ) == 2


def test_cli_triage_corpus_fails_on_signature_change(tmp_path, monkeypatch, capsys):
    from repro import cli

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    corpus_dir = tmp_path / "corpus"
    doctored = FailureSignature(
        protocol="pbft", invariants=("liveness-straggler",), stragglers=(0,)
    )
    Corpus(corpus_dir).add(make_entry("drifted", wedge_spec(), doctored))
    assert cli.main(["triage", "corpus", "--corpus-dir", str(corpus_dir)]) == 1
    captured = capsys.readouterr()
    assert "signature-changed" in captured.out
    assert "changed behaviour" in captured.err


def test_cli_triage_handles_corrupt_corpus_without_traceback(tmp_path, monkeypatch, capsys):
    from repro import cli

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    (corpus_dir / "broken.json").write_text('{"format": 1, "name": "broken"}')
    assert cli.main(["triage", "corpus", "--corpus-dir", str(corpus_dir)]) == 2
    assert "corrupt corpus entry" in capsys.readouterr().err
    assert cli.main(
        ["triage", "corpus", "--corpus-dir", str(corpus_dir), "--promote", "x"]
    ) == 2
    assert "corrupt corpus entry" in capsys.readouterr().err
    archive = write_archive(tmp_path / "wedge.json", wedge_spec())
    assert cli.main(
        ["triage", "minimize", archive, "--ingest", "--corpus-dir", str(corpus_dir)]
    ) == 1
    assert "cannot ingest" in capsys.readouterr().err


def test_cli_triage_without_subcommand_prints_usage(capsys):
    from repro import cli

    assert cli.main(["triage"]) == 2
    assert "triage {minimize,corpus}" in capsys.readouterr().err


def test_cli_fuzz_auto_minimize_skips_unreproducible_findings(tmp_path, monkeypatch, capsys):
    # Force fake violations through the fuzz run: auto-triage re-runs the
    # specs for real, finds them clean, and must not pollute the corpus.
    from repro import cli
    import repro.scenarios as scenarios

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def broken_matrix(specs, workers=None, cache=None, flight=False, **kwargs):
        return [
            fake_result(
                spec,
                [InvariantViolation(invariant="agreement", time=0.1, detail="forced")],
            )
            for spec in specs
        ]

    monkeypatch.setattr(scenarios, "run_matrix", broken_matrix)
    archive_dir = tmp_path / "failures"
    corpus_dir = tmp_path / "corpus"
    exit_code = cli.main(
        [
            "fuzz",
            "--count",
            "1",
            "--seed",
            "1",
            "--duration",
            "0.2",
            "--archive-dir",
            str(archive_dir),
            "--corpus-dir",
            str(corpus_dir),
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "could not reproduce" in captured.err
    assert len(list(archive_dir.glob("*.json"))) == 1  # raw archive kept
    assert Corpus(corpus_dir).entries() == []
