"""Tests for fault injection, the analytical models and the experiment harness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import complexity_table, format_complexity_table
from repro.analysis.model import PerformanceModel, ResourceProfile, Scenario
from repro.analysis.report import format_series, format_table, relative_change
from repro.bench import experiments
from repro.bench.cluster import SimulatedCluster
from repro.core.config import SpotLessConfig
from repro.core.messages import ProposeMessage, SyncMessage
from repro.faults.attacks import (
    DarknessAttack,
    EquivocationAttack,
    NonResponsiveAttack,
    VoteWithholdingAttack,
    attack_by_name,
)
from repro.faults.injector import FaultInjector
from repro.protocols.pbft.messages import PrePrepareMessage, PrepareMessage


# ---------------------------------------------------------------------------
# attack scenarios
# ---------------------------------------------------------------------------


def propose_payload():
    return (0, ProposeMessage(instance=0, view=1, transaction_digests=(), parent_digest=b"p", parent_view=0))


def sync_payload():
    from repro.core.messages import Claim

    return (0, SyncMessage(instance=0, view=1, claim=Claim.failure(1)))


def test_non_responsive_attack_drops_everything_for_attackers():
    attack = NonResponsiveAttack(attackers={3})
    assert attack.should_drop(3, 1, propose_payload())
    assert attack.should_drop(1, 3, sync_payload())
    assert not attack.should_drop(1, 2, sync_payload())


def test_darkness_attack_drops_proposals_to_victims_only():
    attack = DarknessAttack(attackers={0}, victims={2})
    assert attack.should_drop(0, 2, propose_payload())
    assert not attack.should_drop(0, 1, propose_payload())
    assert not attack.should_drop(0, 2, sync_payload())
    # Also applies to PBFT PrePrepare messages.
    preprepare = PrePrepareMessage(instance=0, view=0, sequence=0, transaction_digests=())
    assert attack.should_drop(0, 2, preprepare)


def test_equivocation_attack_rewrites_votes_to_victims():
    from repro.core.messages import Claim

    attack = EquivocationAttack(attackers={1}, victims={2})
    honest = (0, SyncMessage(instance=0, view=1, claim=Claim(view=1, digest=b"honest")))
    # A3 equivocates instead of dropping: votes flow everywhere...
    assert not attack.should_drop(1, 3, honest)
    assert not attack.should_drop(1, 2, honest)
    # ...but the victim receives a conflicting claim while others do not.
    rewritten = attack.rewrite(1, 2, honest)
    assert rewritten is not None
    assert rewritten[1].claim.digest != honest[1].claim.digest
    assert attack.rewrite(1, 3, honest) is None
    assert attack.rewrite(0, 2, honest) is None


def test_vote_withholding_attack_blocks_all_votes_from_attackers():
    attack = VoteWithholdingAttack(attackers={1})
    assert attack.should_drop(1, 0, sync_payload())
    prepare = PrepareMessage(instance=0, view=0, sequence=0, batch_digest=b"")
    assert attack.should_drop(1, 0, prepare)
    assert not attack.should_drop(1, 0, propose_payload())


def test_attack_by_name_builds_the_right_scenario():
    assert isinstance(attack_by_name("A1", [1]), NonResponsiveAttack)
    assert isinstance(attack_by_name("a2", [1], victims=[2]), DarknessAttack)
    assert isinstance(attack_by_name("A3", [1]), EquivocationAttack)
    assert isinstance(attack_by_name("A4", [1]), VoteWithholdingAttack)
    with pytest.raises(ValueError):
        attack_by_name("A9", [1])


def test_spotless_safety_under_darkness_attack():
    """A2 attack in a real run: victims are kept in the dark by a Byzantine
    primary, yet no divergence occurs and progress continues."""
    config = SpotLessConfig(num_replicas=4)
    cluster = SimulatedCluster.spotless(config, clients=3, outstanding_per_client=4)
    injector = FaultInjector(cluster)
    injector.launch_attack(attack_by_name("A2", attackers=[0], victims=[3]), at=0.0)
    result = cluster.run(duration=1.0)
    cluster.assert_no_divergence()
    assert result.confirmed_transactions > 5


def test_spotless_safety_under_vote_withholding():
    config = SpotLessConfig(num_replicas=4)
    cluster = SimulatedCluster.spotless(config, clients=3, outstanding_per_client=4)
    injector = FaultInjector(cluster)
    injector.launch_attack(attack_by_name("A4", attackers=[1]), at=0.0)
    result = cluster.run(duration=1.0)
    cluster.assert_no_divergence()
    assert result.confirmed_transactions > 5


def test_fault_injector_heals_crashes():
    config = SpotLessConfig(num_replicas=4)
    cluster = SimulatedCluster.spotless(config, clients=2, outstanding_per_client=3)
    injector = FaultInjector(cluster)
    injector.crash_replicas([3], at=0.1, until=0.3)
    cluster.start()
    cluster.simulator.run_for(0.2)
    assert cluster.network.is_down(3)
    cluster.simulator.run_for(0.3)
    assert not cluster.network.is_down(3)


# ---------------------------------------------------------------------------
# complexity table (Figure 1)
# ---------------------------------------------------------------------------


def test_complexity_table_matches_figure_1():
    rows = {row.protocol: row for row in complexity_table()}
    assert rows["SpotLess"].phases == 6
    assert rows["Pbft"].phases == 3
    assert rows["HotStuff"].phases == 8
    n, c = 128, 128
    assert rows["SpotLess"].evaluate(n, c)["messages"] == c * 3 * n * n
    assert rows["RCC"].evaluate(n, c)["per_decision"] == 2 * n * n
    assert rows["HotStuff"].evaluate(n)["messages_at_primary"] == 4 * n
    assert "SpotLess" in format_complexity_table()


def test_complexity_spotless_halves_rcc_per_decision_for_all_n():
    rows = {row.protocol: row for row in complexity_table()}
    for n in (4, 16, 64, 128):
        spotless = rows["SpotLess"].evaluate(n)["per_decision"]
        rcc = rows["RCC"].evaluate(n)["per_decision"]
        assert rcc == 2 * spotless


# ---------------------------------------------------------------------------
# performance model
# ---------------------------------------------------------------------------


def test_model_reproduces_the_paper_ordering_at_128_replicas():
    model = PerformanceModel()
    results = {
        name: model.predict(Scenario(protocol=name, num_replicas=128)).throughput
        for name in ("spotless", "rcc", "pbft", "hotstuff", "narwhal-hs")
    }
    assert results["spotless"] > results["rcc"] > results["narwhal-hs"] > results["pbft"] > results["hotstuff"]
    # Rough factors from the abstract: >4x over Pbft, >15x over HotStuff.
    assert results["spotless"] > 4 * results["pbft"]
    assert results["spotless"] > 15 * results["hotstuff"]


def test_model_throughput_never_exceeds_execution_ceiling():
    model = PerformanceModel()
    for protocol in ("spotless", "rcc", "pbft"):
        for n in (4, 16, 64):
            prediction = model.predict(Scenario(protocol=protocol, num_replicas=n, batch_size=400))
            assert prediction.throughput <= ResourceProfile().execution_rate_txn_per_sec + 1e-6


def test_model_failures_reduce_throughput_and_latency_increases():
    model = PerformanceModel()
    healthy = model.predict(Scenario(protocol="spotless", num_replicas=128))
    degraded = model.predict(Scenario(protocol="spotless", num_replicas=128, faulty_replicas=42))
    assert degraded.throughput < healthy.throughput
    assert degraded.latency > healthy.latency
    # The paper reports roughly a 41% decrease with f failures at n=128.
    decrease = 1 - degraded.throughput / healthy.throughput
    assert 0.25 < decrease < 0.6


def test_model_offered_load_caps_throughput():
    model = PerformanceModel()
    limited = model.predict(
        Scenario(protocol="spotless", num_replicas=128, offered_client_batches_per_primary=12)
    )
    saturated = model.predict(Scenario(protocol="spotless", num_replicas=128))
    assert limited.throughput < saturated.throughput
    assert limited.bottleneck == "offered_load"


def test_model_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        PerformanceModel().predict(Scenario(protocol="raft", num_replicas=16))


def test_resource_profile_helpers():
    base = ResourceProfile()
    assert base.with_cores(8).cpu_cores == 8
    assert base.with_bandwidth_mbit(500).bandwidth_bytes_per_sec == pytest.approx(500e6 / 8)
    geo = base.with_regions(4)
    assert geo.effective_delay() > base.effective_delay()
    assert geo.effective_bandwidth() < base.effective_bandwidth()


@given(
    st.sampled_from(["spotless", "rcc", "pbft", "hotstuff", "narwhal-hs"]),
    st.integers(min_value=4, max_value=160),
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=0, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_model_predictions_are_finite_positive_and_bounded(protocol, n, batch, faulty):
    """Property: the model never returns nonsense for any operating point."""
    model = PerformanceModel()
    prediction = model.predict(
        Scenario(protocol=protocol, num_replicas=n, batch_size=batch, faulty_replicas=min(faulty, (n - 1) // 3))
    )
    assert 0 < prediction.throughput <= ResourceProfile().execution_rate_txn_per_sec + 1e-6
    assert 0 < prediction.latency < 60.0


@given(st.integers(min_value=4, max_value=128))
@settings(max_examples=30, deadline=None)
def test_model_spotless_beats_hotstuff_at_every_scale(n):
    model = PerformanceModel()
    spotless = model.predict(Scenario(protocol="spotless", num_replicas=n)).throughput
    hotstuff = model.predict(Scenario(protocol="hotstuff", num_replicas=n)).throughput
    assert spotless > hotstuff


# ---------------------------------------------------------------------------
# experiment harness and reporting
# ---------------------------------------------------------------------------


def test_scalability_experiment_covers_all_protocols_and_sizes():
    rows = experiments.scalability(replica_counts=(4, 16))
    assert len(rows) == 2 * len(experiments.PROTOCOLS)
    assert {row["replicas"] for row in rows} == {4, 16}
    assert all("throughput_txn_s" in row and "latency_s" in row for row in rows)


def test_failure_timeline_shows_rcc_dips_and_spotless_stability():
    rows = experiments.failure_timeline(replicas=32, faulty_replicas=1, duration=60.0)
    spotless = [r["throughput_txn_s"] for r in rows if r["protocol"] == "spotless" and r["time_s"] > 15]
    rcc = [r["throughput_txn_s"] for r in rows if r["protocol"] == "rcc" and r["time_s"] > 15]
    assert max(spotless) - min(spotless) < max(rcc) - min(rcc)


def test_byzantine_experiment_includes_all_attacks_and_rcc_reference():
    rows = experiments.byzantine_attacks(failure_counts=(0, 4))
    attacks = {row["attack"] for row in rows if row["protocol"] == "spotless"}
    assert attacks == {"A1", "A2", "A3", "A4"}
    assert any(row["protocol"] == "rcc" for row in rows)


def test_geo_regions_experiment_has_both_batch_sizes():
    rows = experiments.geo_regions(regions=(1, 4), batch_sizes=(100, 400))
    assert {row["batch_size"] for row in rows} == {100, 400}
    assert {row["regions"] for row in rows} == {1, 4}


def test_single_instance_experiment_restricted_to_one_instance():
    rows = experiments.single_instance_failures(ratios=(0.0, 1.0))
    assert {row["protocol"] for row in rows} == {"spotless", "hotstuff"}


def test_format_table_and_series_render_all_rows():
    rows = [{"a": 1, "b": 2.5}, {"a": 2, "b": 125000.0}]
    table = format_table(rows, ["a", "b"])
    assert "125,000" in table and table.count("\n") >= 3
    series = format_series({"line": [(1, 2.0)]}, "x", "y")
    assert "[line]" in series
    assert format_table([], ["a"]) == "(no data)"


def test_relative_change_helper():
    assert relative_change(100, 123) == pytest.approx(23.0)
    assert relative_change(0, 5) == float("inf")
