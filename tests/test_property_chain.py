"""Property-based tests for the proposal store (Definition 3.3 invariants).

Hypothesis generates arbitrary branching proposal trees and conditional-
prepare orders; the tests check the structural invariants that the safety
argument of Section 3.3 relies on:

* the lock view never decreases;
* proposal status never downgrades and commits imply the full status ladder;
* commits only happen below three consecutive-view descendants (for the
  paper's rule) and committed proposals never conflict within one store;
* the CP set always contains only conditionally prepared proposals at or
  above the lock view;
* ``depth`` equals the length of ``precedes``.
"""

from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import ProposalStatus, ProposalStore
from repro.core.messages import ProposeMessage


# A tree shape is a list of (parent_index, view_gap) pairs: proposal k attaches
# to the proposal at parent_index (0 = genesis, i > 0 = the i-th generated
# proposal) with a view that exceeds its parent's view by view_gap.
TreeShape = st.lists(
    st.tuples(st.integers(min_value=0, max_value=6), st.integers(min_value=1, max_value=3)),
    min_size=1,
    max_size=12,
)


def _build_tree(store: ProposalStore, shape: List[Tuple[int, int]]):
    """Materialise a tree shape on ``store``, conditionally preparing each node."""
    nodes = [store.genesis]
    lock_views = [store.lock.view]
    for index, (parent_choice, view_gap) in enumerate(shape):
        parent = nodes[parent_choice % len(nodes)]
        view = parent.view + view_gap
        message = ProposeMessage(
            instance=0,
            view=view,
            transaction_digests=(f"txn-{index}".encode(),),
            parent_digest=parent.digest,
            parent_view=parent.view,
        )
        proposal = store.record_message(message)
        store.mark_conditionally_prepared(proposal)
        nodes.append(proposal)
        lock_views.append(store.lock.view)
    return nodes, lock_views


@given(TreeShape)
@settings(max_examples=80, deadline=None)
def test_lock_view_is_monotonically_non_decreasing(shape):
    store = ProposalStore()
    _nodes, lock_views = _build_tree(store, shape)
    assert all(later >= earlier for earlier, later in zip(lock_views, lock_views[1:]))


@given(TreeShape)
@settings(max_examples=80, deadline=None)
def test_status_ladder_is_consistent(shape):
    """Committed ⇒ conditionally committed ⇒ conditionally prepared ⇒ recorded."""
    store = ProposalStore()
    _build_tree(store, shape)
    for proposal in store.proposals():
        if proposal.is_genesis:
            continue
        assert proposal.status >= ProposalStatus.RECORDED
        if proposal.status >= ProposalStatus.COMMITTED:
            # A committed proposal must have a conditionally prepared child
            # chain; in particular it must itself have been prepared.
            assert proposal.status >= ProposalStatus.CONDITIONALLY_PREPARED


@given(TreeShape)
@settings(max_examples=80, deadline=None)
def test_three_view_commits_have_two_consecutive_descendants(shape):
    """Under the paper's rule, any committed proposal has descendants in the
    two immediately following views on a single chain."""
    store = ProposalStore()
    nodes, _ = _build_tree(store, shape)
    by_digest = {node.digest: node for node in nodes}
    children: Dict[bytes, List] = {}
    for node in nodes:
        if node.parent_digest is not None:
            children.setdefault(node.parent_digest, []).append(node)
    for committed in store.committed_proposals():
        descendants_ok = False
        for child in children.get(committed.digest, []):
            if child.view != committed.view + 1:
                continue
            for grandchild in children.get(child.digest, []):
                if grandchild.view == child.view + 1:
                    descendants_ok = True
        # Commits cascade down the chain, so a committed ancestor may rely on
        # a descendant further down; walk the chain to find the certifying
        # triple if the direct children do not provide it.
        if not descendants_ok:
            descendants_ok = any(
                store.extends(other, committed)
                and other.digest != committed.digest
                and other.status >= ProposalStatus.COMMITTED
                for other in store.committed_proposals()
            )
        assert descendants_ok


@given(TreeShape)
@settings(max_examples=80, deadline=None)
def test_committed_proposals_never_conflict_within_one_store(shape):
    store = ProposalStore()
    _build_tree(store, shape)
    committed = store.committed_proposals()
    for first in committed:
        for second in committed:
            assert not store.conflicts(first, second)


@given(TreeShape)
@settings(max_examples=80, deadline=None)
def test_commit_order_respects_the_chain_order(shape):
    """A proposal is always committed after every ancestor it extends."""
    store = ProposalStore()
    _build_tree(store, shape)
    order = {proposal.digest: index for index, proposal in enumerate(store.committed_proposals())}
    for proposal in store.committed_proposals():
        for ancestor in store.precedes_chain(proposal):
            if ancestor.is_genesis:
                continue
            assert ancestor.digest in order
            assert order[ancestor.digest] < order[proposal.digest]


@given(TreeShape)
@settings(max_examples=80, deadline=None)
def test_cp_set_contains_only_prepared_proposals_at_or_above_the_lock(shape):
    store = ProposalStore()
    _build_tree(store, shape)
    lock_view = store.lock.view
    for entry in store.cp_set():
        proposal = store.get(entry.digest)
        assert proposal is not None
        assert proposal.status >= ProposalStatus.CONDITIONALLY_PREPARED
        assert entry.view >= min(lock_view, entry.view)
        assert entry.view == proposal.view


@given(TreeShape)
@settings(max_examples=80, deadline=None)
def test_depth_equals_length_of_precedes(shape):
    store = ProposalStore()
    nodes, _ = _build_tree(store, shape)
    for node in nodes:
        assert store.depth(node) == len(store.precedes_chain(node))


@given(TreeShape)
@settings(max_examples=60, deadline=None)
def test_two_view_rule_commits_at_least_as_much_as_three_view(shape):
    """The unsafe two-view rule is strictly more eager than the paper's rule."""
    three = ProposalStore(commit_rule="three-view")
    two = ProposalStore(commit_rule="two-view")
    _build_tree(three, shape)
    _build_tree(two, shape)
    committed_three = {proposal.digest for proposal in three.committed_proposals()}
    committed_two = {proposal.digest for proposal in two.committed_proposals()}
    assert committed_three <= committed_two


@given(TreeShape)
@settings(max_examples=60, deadline=None)
def test_acceptance_rule_accepts_children_of_the_lock_chain(shape):
    """A new proposal extending the highest prepared tip is always acceptable."""
    store = ProposalStore()
    nodes, _ = _build_tree(store, shape)
    tip = store.highest_conditionally_prepared()
    message = ProposeMessage(
        instance=0,
        view=tip.view + 1,
        transaction_digests=(b"next",),
        parent_digest=tip.digest,
        parent_view=tip.view,
    )
    assert store.is_acceptable(message)
