"""Regression tests for the PR6 hot-path overhaul.

Three layers of protection:

* **event accounting** — the slotted :class:`Event` rewrite and the
  peek-based run loop must keep ``pending_events``/``scheduled_events``
  accounting exact under cancellation, lazy removal and the fast path;
* **golden determinism** — a pinned benchmark cell replayed twice must
  process the identical event count and produce the identical ledger, the
  byte-for-byte invariant every optimisation in this PR was gated on;
* **perf harness** — ``repro perf``'s ``--check`` gate must catch
  determinism drift and wall-time blowups, and the committed
  ``BENCH_PR6.json`` trajectory file must stay loadable and self-consistent.
"""

import json
import pathlib

import pytest

from repro.bench import perf
from repro.sim.engine import Simulator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_PR6.json"


# ---------------------------------------------------------------------------
# event accounting under the slotted Event / peek-based run loop
# ---------------------------------------------------------------------------


def test_cancel_decrements_pending_immediately():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    event.cancel()
    # Live count drops immediately; the heap entry is removed lazily.
    assert sim.pending_events == 1
    assert sim.scheduled_events == 2
    sim.run()
    assert sim.pending_events == 0
    assert sim.scheduled_events == 0
    assert sim.processed_events == 1


def test_double_cancel_counts_once():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.pending_events == 0


def test_cancel_after_execution_is_a_noop():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]
    assert sim.pending_events == 0
    event.cancel()
    assert sim.pending_events == 0


def test_fast_path_entries_count_as_pending():
    sim = Simulator()
    fired = []
    sim.schedule_call(1.0, fired.append, (1,))
    sim.schedule_call(2.0, fired.append, (2,))
    assert sim.pending_events == 2
    sim.run(until=1.5)
    assert fired == [1]
    assert sim.pending_events == 1
    sim.run()
    assert fired == [1, 2]
    assert sim.pending_events == 0


def test_cancelled_head_does_not_leak_into_window_accounting():
    sim = Simulator()
    head = sim.schedule(1.0, lambda: None)
    tail = sim.schedule(5.0, lambda: None)
    head.cancel()
    # The cancelled head is dropped lazily; the 5.0 event is peeked, seen
    # beyond the window and left in the queue.
    sim.run(until=2.0)
    assert sim.now == 2.0
    assert sim.pending_events == 1
    assert sim.scheduled_events == 1
    tail.cancel()
    sim.run()
    assert sim.pending_events == 0
    assert sim.scheduled_events == 0


def test_shared_sequence_keeps_mixed_scheduling_deterministic():
    # schedule() and schedule_call() share one sequence counter, so ties at
    # the same (time, priority) fire in insertion order across both paths.
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("event-a"))
    sim.schedule_call(1.0, order.append, ("call-b",))
    sim.schedule(1.0, lambda: order.append("event-c"))
    sim.run()
    assert order == ["event-a", "call-b", "event-c"]


# ---------------------------------------------------------------------------
# golden determinism of a pinned benchmark cell
# ---------------------------------------------------------------------------


def _run_hotstuff_cell():
    from repro.bench.cluster import SimulatedCluster

    cluster = SimulatedCluster.for_protocol(
        "hotstuff",
        num_replicas=perf.HAPPY_REPLICAS,
        batch_size=perf.HAPPY_BATCH,
        clients=perf.HAPPY_CLIENTS,
        outstanding_per_client=perf.HAPPY_OUTSTANDING,
        seed=perf.HAPPY_SEED,
        checkpoint_interval=0,
    )
    cluster.run(duration=perf.HAPPY_DURATION)
    ledger = cluster.replicas[0].ledger
    return cluster.simulator.processed_events, ledger.head.digest()


def test_pinned_cell_replays_byte_identically():
    events_one, digest_one = _run_hotstuff_cell()
    events_two, digest_two = _run_hotstuff_cell()
    assert events_one == events_two
    assert digest_one == digest_two


# ---------------------------------------------------------------------------
# perf harness: check gate semantics
# ---------------------------------------------------------------------------


def _blob(cells):
    total_wall = sum(c["wall_s"] for c in cells)
    total_events = sum(c["events"] for c in cells)
    return {
        "schema": perf.SCHEMA,
        "quick": False,
        "cells": cells,
        "total_wall_s": total_wall,
        "total_events": total_events,
        "aggregate_events_per_sec": int(total_events / total_wall) if total_wall else 0,
    }


def _cell(name, events, wall_s):
    return {
        "name": name,
        "events": events,
        "wall_s": wall_s,
        "events_per_sec": int(events / wall_s),
    }


def test_check_report_passes_on_matching_suite():
    reference = _blob([_cell("a", 100, 1.0), _cell("b", 200, 2.0)])
    report = _blob([_cell("a", 100, 1.1), _cell("b", 200, 2.1)])
    assert perf.check_report(report, reference) == []


def test_check_report_flags_determinism_drift():
    reference = _blob([_cell("a", 100, 1.0)])
    report = _blob([_cell("a", 101, 1.0)])
    failures = perf.check_report(report, reference)
    assert len(failures) == 1
    assert "determinism drift" in failures[0]


def test_check_report_flags_wall_regression():
    reference = _blob([_cell("a", 100, 1.0)])
    report = _blob([_cell("a", 100, 2.0)])
    failures = perf.check_report(report, reference, tolerance=0.25)
    assert len(failures) == 1
    assert "wall time" in failures[0]
    # A generous tolerance accepts the same run.
    assert perf.check_report(report, reference, tolerance=2.0) == []


def test_check_report_ignores_cells_missing_from_reference():
    # --quick runs gate only the cells both suites share.
    reference = _blob([_cell("a", 100, 1.0)])
    report = _blob([_cell("a", 100, 1.0), _cell("new", 5, 0.1)])
    assert perf.check_report(report, reference) == []


def test_check_report_requires_a_common_cell():
    reference = _blob([_cell("a", 100, 1.0)])
    report = _blob([_cell("z", 100, 1.0)])
    failures = perf.check_report(report, reference)
    assert failures == ["no cells in common with the reference suite"]


def test_check_report_unwraps_trajectory_envelope():
    # A committed BENCH file holds {"before": ..., "after": ...}; the gate
    # compares against "after" (the tree the numbers were committed with).
    after = _blob([_cell("a", 100, 1.0)])
    before = _blob([_cell("a", 100, 10.0)])
    committed = {"schema": perf.SCHEMA, "before": before, "after": after}
    report = _blob([_cell("a", 100, 1.05)])
    assert perf.check_report(report, committed) == []
    drifted = _blob([_cell("a", 99, 1.0)])
    assert len(perf.check_report(drifted, committed)) == 1


def test_profile_cell_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown perf cell"):
        perf.profile_cell("no-such-cell")


# ---------------------------------------------------------------------------
# the committed trajectory file
# ---------------------------------------------------------------------------


def test_bench_file_is_loadable_and_self_consistent():
    committed = perf.load_reference(str(BENCH_FILE))
    assert committed["schema"] == perf.SCHEMA
    before, after = committed["before"], committed["after"]
    suite_names = [cell.name for cell in perf.CELLS]
    for blob in (before, after):
        assert [c["name"] for c in blob["cells"]] == suite_names
    # The whole point of the trajectory file: the optimised tree processes
    # the byte-identical event schedule, only faster.
    before_events = {c["name"]: c["events"] for c in before["cells"]}
    after_events = {c["name"]: c["events"] for c in after["cells"]}
    assert before_events == after_events
    assert after["total_wall_s"] < before["total_wall_s"]
    assert committed["speedup"]["aggregate_events_per_sec"] >= 3.0
