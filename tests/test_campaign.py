"""Tests for the campaign observability layer (`repro/dispatch/ledger.py`,
`repro/dispatch/campaign.py`, and the `repro campaign` CLI verbs).

The contract under test: every `Dispatcher.run` with a ledger attached
leaves an append-only JSONL record whose reduction accounts for every cell
(done + failed + cache_hits + in_flight + pending == total) — including
after a crash mid-campaign — while the results themselves stay byte-
identical to a ledger-free run.
"""

import json
import multiprocessing

import pytest

from repro import cli
from repro.dispatch import (
    CampaignLedger,
    DispatchTask,
    Dispatcher,
    ResultCache,
    append_record,
    default_ledger_path,
    read_ledger,
    reduce_ledger,
    register_task,
)
from repro.dispatch.campaign import format_event, format_report, format_status
from repro.scenarios import single_fault_spec

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

SMALL_SPECS = [
    single_fault_spec("pbft", "crash", f=1, duration=0.2, seed=1),
    single_fault_spec("hotstuff", "A1", f=1, duration=0.2, seed=2),
]


# A cheap instant task so ledger mechanics don't pay for simulations.
def _run_echo_cell(payload):
    if payload.get("boom"):
        raise RuntimeError(f"echo {payload['i']} exploded")
    if payload.get("interrupt"):
        raise KeyboardInterrupt()
    return {"i": payload["i"]}


register_task(
    DispatchTask(
        name="test-echo",
        run=_run_echo_cell,
        payload_json=lambda payload: {"i": payload["i"]},
        encode=lambda value: value,
        decode=lambda value: value,
        describe=lambda payload: f"echo-{payload['i']}",
    )
)


# ---------------------------------------------------------------------------
# ledger file format
# ---------------------------------------------------------------------------


def test_append_and_read_roundtrip(tmp_path):
    path = tmp_path / "ledger.jsonl"
    append_record(path, {"event": "a", "t": 1.0})
    append_record(path, {"event": "b", "t": 2.0, "nested": {"x": [1, 2]}})
    records = read_ledger(path)
    assert [r["event"] for r in records] == ["a", "b"]
    assert records[1]["nested"] == {"x": [1, 2]}


def test_reader_skips_truncated_and_corrupt_lines(tmp_path):
    # A crash mid-append leaves at most one truncated final line; a reader
    # racing a live writer can see the same thing. Neither is fatal.
    path = tmp_path / "ledger.jsonl"
    append_record(path, {"event": "a", "t": 1.0})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write('{"event": "b", "t": 2.0}\n')
        handle.write('{"event": "c", "t":')  # torn final write
    records = read_ledger(path)
    assert [r["event"] for r in records] == ["a", "b"]


def test_default_ledger_path_is_unique_per_kind_and_process(tmp_path):
    path = default_ledger_path("fuzz-7", directory=tmp_path)
    assert path.parent == tmp_path
    assert path.name.startswith("fuzz-7-")
    assert path.suffix == ".jsonl"


# ---------------------------------------------------------------------------
# dispatcher + ledger: the event stream of one campaign
# ---------------------------------------------------------------------------


def test_serial_campaign_writes_a_complete_event_stream(tmp_path):
    path = tmp_path / "echo.jsonl"
    ledger = CampaignLedger(path, name="echo-run", meta={"seed": 7})
    dispatcher = Dispatcher(ledger=ledger, on_error="collect")
    payloads = [{"i": 0}, {"i": 1, "boom": True}, {"i": 2}]
    results = dispatcher.run("test-echo", payloads)
    assert results[0] == {"i": 0} and results[2] == {"i": 2}

    records = read_ledger(path)
    events = [r["event"] for r in records]
    assert events[0] == "campaign-begin"
    assert events[-1] == "campaign-end"
    begin = records[0]
    assert begin["task"] == "test-echo"
    assert begin["total"] == 3
    assert begin["name"] == "echo-run"
    assert begin["meta"] == {"seed": 7}
    assert len(begin["source"]) == 64  # the source-tree fingerprint
    assert events.count("cell-start") == 3
    assert events.count("cell-done") == 2
    assert events.count("cell-failed") == 1
    failed = next(r for r in records if r["event"] == "cell-failed")
    assert failed["cell"] == "echo-1"  # the task's describe hook
    assert failed["error"]["type"] == "RuntimeError"
    assert "exploded" in failed["error"]["message"]
    # Every cell record carries the content-address key even without a cache.
    assert all(len(r["key"]) == 64 for r in records if r["event"] == "cell-start")
    end = records[-1]
    assert end["manifest"] == {"done": 2, "failed": 1, "cache_hits": 0}
    assert end["wall"] >= 0.0


def test_ledger_reuse_truncates_the_previous_campaign(tmp_path):
    path = tmp_path / "echo.jsonl"
    for _ in range(2):
        Dispatcher(ledger=CampaignLedger(path)).run("test-echo", [{"i": 0}])
    records = read_ledger(path)
    assert [r["event"] for r in records].count("campaign-begin") == 1


def test_cache_hits_are_ledgered_and_reduce_correctly(tmp_path):
    cache_root = tmp_path / "cache"
    ledger_path = tmp_path / "run.jsonl"
    payloads = [{"i": 0}, {"i": 1}]
    Dispatcher(cache=ResultCache(root=cache_root, fingerprint="pin")).run(
        "test-echo", payloads
    )
    dispatcher = Dispatcher(
        cache=ResultCache(root=cache_root, fingerprint="pin"),
        ledger=CampaignLedger(ledger_path),
    )
    results = dispatcher.run("test-echo", payloads)
    assert results == [{"i": 0}, {"i": 1}]
    assert dispatcher.last_stats.cache_hits == 2
    records = read_ledger(ledger_path)
    assert [r["event"] for r in records].count("cache-hit") == 2
    manifest = reduce_ledger(records)
    assert manifest.cache_hits == 2 and manifest.done == 0
    assert manifest.accounted()


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
def test_parallel_campaign_results_and_keys_match_serial(tmp_path):
    # The acceptance bar: with the ledger enabled, results and cache keys
    # are byte-identical between serial and parallel runs — only the
    # ledger's own timing/ordering fields differ.
    serial_ledger = tmp_path / "serial.jsonl"
    parallel_ledger = tmp_path / "parallel.jsonl"
    serial = Dispatcher(ledger=CampaignLedger(serial_ledger)).run(
        "scenario", SMALL_SPECS
    )
    parallel = Dispatcher(workers=2, ledger=CampaignLedger(parallel_ledger)).run(
        "scenario", SMALL_SPECS
    )
    assert [r.summary_digest() for r in serial] == [r.summary_digest() for r in parallel]
    assert [r.row() for r in serial] == [r.row() for r in parallel]

    def keys_by_index(path):
        return {
            r["index"]: r["key"]
            for r in read_ledger(path)
            if r["event"] in ("cell-start", "cell-done")
        }

    assert keys_by_index(serial_ledger) == keys_by_index(parallel_ledger)
    # The pool initializer pulses every worker before its first cell.
    parallel_records = read_ledger(parallel_ledger)
    heartbeat_pids = {
        r["pid"] for r in parallel_records if r["event"] == "heartbeat"
    }
    assert heartbeat_pids  # at least the workers' immediate pulses
    manifest = reduce_ledger(parallel_records)
    assert manifest.done == len(SMALL_SPECS)
    assert manifest.accounted() and manifest.finished


def test_interrupted_campaign_accounts_for_every_cell(tmp_path):
    # KeyboardInterrupt is deliberately NOT fault-isolated: it tears the
    # campaign down, and the ledger left behind must still account for
    # every cell — done + failed + cache + in-flight + pending == total.
    path = tmp_path / "interrupted.jsonl"
    dispatcher = Dispatcher(ledger=CampaignLedger(path))
    payloads = [{"i": 0}, {"i": 1, "interrupt": True}, {"i": 2}]
    with pytest.raises(KeyboardInterrupt):
        dispatcher.run("test-echo", payloads)
    records = read_ledger(path)
    assert all(r["event"] != "campaign-end" for r in records)
    manifest = reduce_ledger(records)
    assert manifest.total == 3
    assert manifest.done == 1
    assert manifest.in_flight == 1  # started, never reported an outcome
    assert manifest.pending == 1  # never reached
    assert manifest.accounted()
    assert not manifest.finished
    assert manifest.run_state(now=manifest.last_event_at + 3600.0) == "interrupted"


# ---------------------------------------------------------------------------
# manifest reduction
# ---------------------------------------------------------------------------


def _synthetic_ledger():
    """A hand-built campaign: 4 cells, 2 workers, one failure mode twice."""
    signature = {
        "format": 1,
        "protocol": "pbft",
        "invariants": ["liveness"],
        "stragglers": [2],
    }
    return [
        {
            "event": "campaign-begin", "t": 100.0, "task": "scenario",
            "name": "fuzz-9", "total": 4, "workers": 2,
            "heartbeat_interval": 5.0, "source": "f" * 64,
        },
        {"event": "cell-start", "t": 100.1, "index": 0, "cell": "c0", "pid": 11},
        {"event": "cell-start", "t": 100.1, "index": 1, "cell": "c1", "pid": 12},
        {"event": "heartbeat", "t": 101.0, "pid": 11},
        {
            "event": "cell-done", "t": 102.0, "index": 0, "cell": "c0", "pid": 11,
            "wall": 1.9,
            "outcome": {
                "violations": 1, "counters": {"timeouts": 3},
                "signature": signature,
            },
        },
        {
            "event": "cell-done", "t": 103.0, "index": 1, "cell": "c1", "pid": 12,
            "wall": 2.9,
            "outcome": {
                "violations": 2, "counters": {"timeouts": 2, "pulls": 1},
                "signature": signature,
            },
        },
        {"event": "cache-hit", "t": 103.1, "index": 2, "cell": "c2"},
        {"event": "cell-start", "t": 103.2, "index": 3, "cell": "c3", "pid": 11},
        {
            "event": "cell-failed", "t": 104.0, "index": 3, "cell": "c3", "pid": 11,
            "wall": 0.8, "error": {"type": "RuntimeError", "message": "boom"},
        },
        {"event": "campaign-end", "t": 104.5, "wall": 4.5,
         "manifest": {"done": 2, "failed": 1, "cache_hits": 1}},
    ]


def test_manifest_reduces_counts_rates_and_groups():
    manifest = reduce_ledger(_synthetic_ledger())
    assert manifest.task == "scenario" and manifest.name == "fuzz-9"
    assert manifest.total == 4
    assert (manifest.done, manifest.failed, manifest.cache_hits) == (2, 1, 1)
    assert manifest.in_flight == 0 and manifest.pending == 0
    assert manifest.accounted() and manifest.finished
    assert manifest.elapsed_seconds() == pytest.approx(4.5)
    assert manifest.cells_per_second() == pytest.approx(4 / 4.5)
    assert manifest.eta_seconds() is None  # already finished
    # Violations group under one FailureSignature key.
    assert manifest.violating == 2
    assert len(manifest.signatures) == 1
    group = next(iter(manifest.signatures.values()))
    assert group.count == 2 and set(group.cells) == {"c0", "c1"}
    assert "pbft" in group.label
    # Digest-excluded counters sum across cells.
    assert manifest.counters == {"timeouts": 5, "pulls": 1}
    # Errors group by exception type.
    assert manifest.errors == {"RuntimeError": [("c3", "boom")]}
    # Wall-time histogram over the executed cells only.
    assert manifest.wall.count == 3
    assert manifest.wall.maximum() == pytest.approx(2.9)
    assert manifest.slowest[0] == (2.9, "c1")
    # Worker accounting from cell records and heartbeats.
    assert set(manifest.worker_stats) == {11, 12}
    assert manifest.worker_stats[11].cells == 2
    assert manifest.worker_stats[11].failed == 1
    assert manifest.worker_stats[11].heartbeats == 1
    assert manifest.worker_stats[11].busy_seconds == pytest.approx(2.7)


def test_manifest_eta_and_dead_worker_detection():
    records = [r for r in _synthetic_ledger() if r["event"] != "campaign-end"]
    manifest = reduce_ledger(records)
    assert not manifest.finished
    # 3 cells in ~4s elapsed; the 4th in-flight? No: index 3 failed, so
    # 3 completed + cache-hit = 4... rebuild: drop the failure too.
    records = [r for r in records if r["event"] != "cell-failed"]
    manifest = reduce_ledger(records)
    assert manifest.in_flight == 1 and manifest.pending == 0
    eta = manifest.eta_seconds(now=104.0)
    assert eta is not None and eta > 0
    # Both workers' last pulse is far older than 3 heartbeat intervals.
    assert manifest.dead_workers(now=104.0 + 120.0) == [11, 12]
    assert manifest.run_state(now=104.0 + 120.0) == "interrupted"
    assert manifest.run_state(now=104.1) == "running"


def test_reducer_ignores_unknown_events_and_duplicates():
    records = _synthetic_ledger()
    records.insert(3, {"event": "from-the-future", "t": 101.0, "shiny": True})
    # A replayed duplicate outcome must not double-count.
    records.append(dict(records[4]))
    manifest = reduce_ledger(records)
    assert manifest.done == 2 and manifest.accounted()


def test_format_status_report_and_event_render(capsys):
    manifest = reduce_ledger(_synthetic_ledger())
    status = format_status(manifest, now=105.0)
    assert "campaign fuzz-9" in status and "finished" in status
    assert "4 total" in status and "2 done" in status and "1 failed" in status
    report = format_report(manifest, now=105.0)
    assert "failure signatures:" in report
    assert "x2: c0, c1" in report
    assert "RuntimeError x1" in report
    assert "cell wall time" in report and "p99" in report
    assert "slowest cells:" in report
    assert "timeouts=5" in report
    assert "worker utilization:" in report
    lines = [format_event(record) for record in _synthetic_ledger()]
    assert any("campaign-begin" in line and "fuzz-9" in line for line in lines)
    assert any("cell-failed" in line and "RuntimeError: boom" in line for line in lines)
    assert any("violations=1" in line for line in lines)
    assert any("campaign-end" in line for line in lines)


def test_progress_line_writes_to_stderr(tmp_path, capsys):
    ledger = CampaignLedger(tmp_path / "progress.jsonl")
    Dispatcher(ledger=ledger, progress=True).run("test-echo", [{"i": 0}, {"i": 1}])
    err = capsys.readouterr().err
    assert "2/2" in err and "cells/s" in err


# ---------------------------------------------------------------------------
# `repro campaign` CLI verbs
# ---------------------------------------------------------------------------


@pytest.fixture
def finished_ledger(tmp_path):
    path = tmp_path / "campaign.jsonl"
    Dispatcher(ledger=CampaignLedger(path, name="cli-run"), on_error="collect").run(
        "test-echo", [{"i": 0}, {"i": 1, "boom": True}, {"i": 2}]
    )
    return path


def test_cli_campaign_status(finished_ledger, capsys):
    assert cli.main(["campaign", "status", str(finished_ledger)]) == 0
    out = capsys.readouterr().out
    assert "campaign cli-run" in out and "finished" in out
    assert "3 total" in out and "2 done" in out and "1 failed" in out


def test_cli_campaign_report_and_trace_export(finished_ledger, tmp_path, capsys):
    trace_path = tmp_path / "campaign-trace.json"
    exit_code = cli.main(
        ["campaign", "report", str(finished_ledger), "--trace", str(trace_path)]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "cell errors:" in captured.out
    assert "RuntimeError" in captured.out
    assert str(trace_path) in captured.err
    # The exported timeline is structurally valid Perfetto input.
    from repro.obs import validate_chrome_trace

    document = json.loads(trace_path.read_text())
    counts = validate_chrome_trace(document)
    assert counts.get("X", 0) == 3  # one slice per executed cell
    names = {event["name"] for event in document["traceEvents"]}
    assert "echo-1" in names and "campaign-begin" in names


def test_cli_campaign_tail(finished_ledger, capsys):
    assert cli.main(["campaign", "tail", str(finished_ledger), "-n", "2"]) == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line]
    assert len(lines) == 2
    assert "campaign-end" in lines[-1]
    assert cli.main(["campaign", "tail", str(finished_ledger), "-n", "0"]) == 0
    assert "campaign-begin" in capsys.readouterr().out


def test_cli_campaign_rejects_missing_or_empty_ledgers(tmp_path, capsys):
    assert cli.main(["campaign", "status", str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read ledger" in capsys.readouterr().err
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert cli.main(["campaign", "report", str(empty)]) == 2
    assert "no campaign records" in capsys.readouterr().err
    assert cli.main(["campaign"]) == 2
    assert "campaign {status,report,tail}" in capsys.readouterr().err


def test_cli_scenario_matrix_records_a_ledger(tmp_path, capsys):
    ledger_path = tmp_path / "matrix.jsonl"
    exit_code = cli.main(
        [
            "scenario", "--matrix", "smoke", "--duration", "0.2",
            "--ledger", str(ledger_path),
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "dispatch:" in captured.err
    manifest = reduce_ledger(read_ledger(ledger_path))
    assert manifest.finished and manifest.accounted()
    assert manifest.done == manifest.total > 0
    assert cli.main(["campaign", "status", str(ledger_path)]) == 0
    assert "finished" in capsys.readouterr().out
