"""Tests for the wire-size model, batching, ledger, KV table and workload."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger.block import Block, BlockProof, genesis_block
from repro.ledger.execution import ExecutionEngine, make_noop_transaction
from repro.ledger.kvtable import KeyValueTable
from repro.ledger.ledger import Ledger, LedgerError
from repro.net.batching import MessageBuffer, SendBuffer
from repro.net.message import Envelope
from repro.net.sizes import MessageSizeModel
from repro.workload.arrival import ClosedLoopLoad, OpenLoopLoad
from repro.workload.requests import Operation, Transaction
from repro.workload.ycsb import YcsbConfig, YcsbWorkload
from repro.sim.rng import DeterministicRng


# ---------------------------------------------------------------------------
# wire sizes
# ---------------------------------------------------------------------------


def test_reference_sizes_match_the_paper():
    sizes = MessageSizeModel(batch_size=100, transaction_bytes=48)
    assert sizes.proposal_bytes() == 5400
    assert sizes.reply_bytes() == 1748
    assert sizes.control_bytes() == 432


def test_proposal_size_scales_with_batch_and_transaction_size():
    base = MessageSizeModel(batch_size=100, transaction_bytes=48)
    bigger_batch = base.with_batch_size(200)
    bigger_txn = base.with_transaction_bytes(1600)
    assert bigger_batch.proposal_bytes() > base.proposal_bytes()
    assert bigger_txn.proposal_bytes() > base.proposal_bytes()
    assert bigger_batch.reply_bytes() > base.reply_bytes()


def test_control_and_certificate_sizes_grow_with_signatures():
    sizes = MessageSizeModel()
    assert sizes.control_bytes(signatures=2) == sizes.control_bytes() + 2 * sizes.constants.signature_bytes
    assert sizes.certificate_bytes(85) > sizes.certificate_bytes(3)


def test_envelope_forwarding_preserves_signature():
    from repro.core.messages import AskMessage, Claim

    message = AskMessage(instance=0, view=1, claim=Claim(view=1, digest=b"d"))
    envelope = Envelope(sender=3, message=message, size_bytes=100, mac_tag=b"m")
    forwarded = envelope.with_forwarder(5)
    assert forwarded.forwarded_by == 5
    assert forwarded.mac_tag is None
    assert forwarded.sequence == envelope.sequence
    assert "AskMessage" in forwarded.described()


# ---------------------------------------------------------------------------
# batching buffers
# ---------------------------------------------------------------------------


def test_message_buffer_emits_full_batches_in_fifo_order():
    buffer = MessageBuffer(batch_size=3)
    buffer.extend([1, 2, 3, 4])
    assert buffer.pop_batch() == [1, 2, 3]
    assert buffer.pop_batch() is None
    assert buffer.pop_batch(allow_partial=True) == [4]
    assert buffer.pending == 0


def test_message_buffer_drain_returns_everything():
    buffer = MessageBuffer(batch_size=10)
    buffer.extend(range(4))
    assert buffer.drain() == [0, 1, 2, 3]
    assert len(buffer) == 0


def test_send_buffer_flushes_on_threshold_and_on_demand():
    flushed = []
    buffer = SendBuffer(threshold_bytes=100, flush_callback=lambda dest, payloads, total: flushed.append((dest, len(payloads), total)))
    buffer.enqueue(1, "a", 40)
    buffer.enqueue(1, "b", 40)
    assert flushed == []
    buffer.enqueue(1, "c", 40)
    assert flushed == [(1, 3, 120)]
    buffer.enqueue(2, "d", 10)
    buffer.flush_all()
    assert flushed[-1] == (2, 1, 10)
    assert buffer.pending_bytes(1) == 0


def test_buffers_reject_invalid_parameters():
    with pytest.raises(ValueError):
        MessageBuffer(batch_size=0)
    with pytest.raises(ValueError):
        SendBuffer(threshold_bytes=0, flush_callback=lambda *args: None)


# ---------------------------------------------------------------------------
# KV table
# ---------------------------------------------------------------------------


def test_table_initial_values_are_deterministic_across_replicas():
    a = KeyValueTable(record_count=100, value_size=16)
    b = KeyValueTable(record_count=100, value_size=16)
    assert a.read(7) == b.read(7)
    assert len(a.read(7)) == 16


def test_table_write_then_read_round_trip_and_padding():
    table = KeyValueTable(record_count=10, value_size=8)
    table.write(3, b"xy")
    assert table.read(3) == b"xy" + b"\x00" * 6
    assert table.modified_keys() == 1


def test_table_rejects_out_of_range_keys():
    table = KeyValueTable(record_count=10)
    with pytest.raises(KeyError):
        table.read(10)
    with pytest.raises(KeyError):
        table.write(-1, b"v")


def test_table_state_digest_reflects_writes_only():
    a = KeyValueTable(record_count=10)
    b = KeyValueTable(record_count=10)
    assert a.state_digest() == b.state_digest()
    a.write(1, b"x" * 48)
    assert a.state_digest() != b.state_digest()
    b.write(1, b"x" * 48)
    assert a.state_digest() == b.state_digest()


def test_table_snapshot_restore():
    table = KeyValueTable(record_count=10)
    table.write(1, b"a" * 48)
    snapshot = table.snapshot()
    table.write(2, b"b" * 48)
    table.restore(snapshot)
    assert table.modified_keys() == 1


# ---------------------------------------------------------------------------
# ledger
# ---------------------------------------------------------------------------


def test_ledger_appends_hash_chained_blocks():
    ledger = Ledger()
    ledger.append([b"t1", b"t2"], proof=BlockProof("spotless", 1, 0, ("replica:0",)))
    ledger.append([b"t3"])
    assert ledger.height == 2
    assert ledger.total_transactions() == 3
    assert ledger.verify_chain()
    assert ledger.transaction_digests() == [b"t1", b"t2", b"t3"]


def test_ledger_prefix_relation():
    a = Ledger()
    b = Ledger()
    a.append([b"t1"])
    b.append([b"t1"])
    b.append([b"t2"])
    assert a.matches_prefix_of(b)
    assert not b.matches_prefix_of(a)
    divergent = Ledger()
    divergent.append([b"other"])
    assert not divergent.matches_prefix_of(b)


def test_ledger_block_access_and_errors():
    ledger = Ledger()
    block = ledger.append([b"t"])
    assert ledger.block_at(1) is block
    assert ledger.block_at(0) == genesis_block()
    with pytest.raises(LedgerError):
        ledger.block_at(5)


def test_block_digest_changes_with_content():
    one = Block(height=1, parent_digest=b"\x00" * 32, transactions=(b"a",))
    two = Block(height=1, parent_digest=b"\x00" * 32, transactions=(b"b",))
    assert one.digest() != two.digest()


def test_block_digest_matches_canonical_encoding():
    # Block.digest() assembles its encoding inline (to reuse the memoized
    # proof sub-encoding); it must stay byte-identical to hashing the
    # canonical fields the slow way.
    from repro.crypto.digest import digest_bytes

    proof = BlockProof(protocol="pbft", view=3, instance=1, quorum=("replica:0", "replica:1"))
    cases = [
        Block(height=0, parent_digest=b"\x00" * 32, transactions=()),
        Block(height=7, parent_digest=b"\x11" * 32, transactions=(b"a" * 32, b"b" * 32)),
        Block(height=7, parent_digest=b"\x11" * 32, transactions=(b"a" * 32,), proof=proof),
        Block(height=2, parent_digest=b"\x22" * 32, transactions=(), proof=proof),
    ]
    for block in cases:
        assert block.digest() == digest_bytes(block.canonical_fields())
    # The proof sub-encoding memo must also match a fresh canonical pass.
    from repro.crypto.digest import canonical_bytes

    assert proof.encoded() == canonical_bytes(proof.canonical_fields())
    assert proof.encoded() is proof.encoded()


# ---------------------------------------------------------------------------
# execution engine
# ---------------------------------------------------------------------------


def make_engine():
    table = KeyValueTable(record_count=1000)
    return ExecutionEngine(table=table, ledger=Ledger())


def test_execution_applies_writes_and_appends_block():
    engine = make_engine()
    txn = Transaction(client_id=1, sequence=0, operations=(Operation.write(5, b"v" * 48),))
    results = engine.execute_batch([txn])
    assert engine.executed_transactions == 1
    assert engine.ledger.height == 1
    assert results[0].client_id == 1
    assert engine.table.read(5) == b"v" * 48


def test_execution_reads_return_values():
    engine = make_engine()
    txn = Transaction(client_id=1, sequence=0, operations=(Operation.read(5),))
    result = engine.execute_transaction(txn)
    assert len(result.read_values) == 1


def test_execution_seconds_respects_rate_ceiling():
    engine = make_engine()
    assert engine.execution_seconds(340_000) == pytest.approx(1.0)
    assert engine.execution_seconds(0) == 0.0


def test_identical_batches_produce_identical_state_digests():
    first = make_engine()
    second = make_engine()
    txns = [
        Transaction(client_id=1, sequence=i, operations=(Operation.write(i, bytes([i]) * 48),))
        for i in range(5)
    ]
    first.execute_batch(txns)
    second.execute_batch(txns)
    assert first.state_digest() == second.state_digest()


def test_noop_transactions_are_deterministic_per_slot():
    assert make_noop_transaction(2, 7).digest() == make_noop_transaction(2, 7).digest()
    assert make_noop_transaction(2, 7).digest() != make_noop_transaction(3, 7).digest()
    assert make_noop_transaction(2, 7).is_noop()


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------


def test_ycsb_write_fraction_roughly_matches_configuration():
    workload = YcsbWorkload(YcsbConfig(record_count=10_000, write_fraction=0.9), rng=DeterministicRng(1))
    transactions = workload.transactions(client_id=0, count=500)
    writes = sum(1 for t in transactions for op in t.operations if op.kind == "write")
    assert 0.8 < writes / 500 < 1.0


def test_ycsb_keys_stay_within_the_table():
    workload = YcsbWorkload(YcsbConfig(record_count=1000), rng=DeterministicRng(2))
    for transaction in workload.transactions(client_id=0, count=200):
        for operation in transaction.operations:
            assert 0 <= operation.key < 1000


def test_ycsb_transactions_are_unique_per_sequence():
    workload = YcsbWorkload(rng=DeterministicRng(3))
    digests = {t.digest() for t in workload.transactions(client_id=0, count=100)}
    assert len(digests) == 100


def test_ycsb_config_validation():
    with pytest.raises(ValueError):
        YcsbConfig(record_count=0).validate()
    with pytest.raises(ValueError):
        YcsbConfig(write_fraction=1.5).validate()


def test_transaction_payload_bytes_grow_with_value_size():
    small = Transaction(client_id=0, sequence=0, operations=(Operation.write(1, b"x" * 48),))
    large = Transaction(client_id=0, sequence=0, operations=(Operation.write(1, b"x" * 1600),))
    assert large.payload_bytes() > small.payload_bytes()


@given(st.integers(min_value=0, max_value=1_000_000), st.integers(min_value=1, max_value=128))
@settings(max_examples=60)
def test_instance_assignment_is_stable_and_in_range(sequence, instances):
    txn = Transaction(client_id=1, sequence=sequence, operations=(Operation.read(0),))
    assignment = txn.instance_assignment(instances)
    assert 0 <= assignment < instances
    assert assignment == txn.instance_assignment(instances)


def test_open_loop_arrivals_respect_rate_and_horizon():
    load = OpenLoopLoad(rate_per_second=100.0, rng=DeterministicRng(4))
    arrivals = list(load.arrivals(horizon=1.0))
    assert 50 < len(arrivals) < 200
    assert all(0 < t <= 1.0 for t in arrivals)


def test_closed_loop_validation_and_concurrency():
    load = ClosedLoopLoad(clients=8, think_time=0.0)
    assert load.offered_concurrency() == 8
    with pytest.raises(ValueError):
        ClosedLoopLoad(clients=0)
