"""Tests for the parallel dispatch subsystem (`repro/dispatch/`).

Covers the four pieces the subsystem composes: deterministic per-cell seed
derivation, the content-addressed result cache, the dispatcher's
shard/collect cycle (serial and parallel runs must be indistinguishable),
and the randomized multi-fault scenario fuzzer.
"""

import json
import multiprocessing

import pytest

from repro.bench import ablations, experiments
from repro.dispatch import (
    CellFailure,
    DispatchError,
    DispatchTask,
    Dispatcher,
    ResultCache,
    fuzz_matrix,
    fuzz_spec,
    get_task,
    register_task,
    source_fingerprint,
    task_names,
)
from repro.scenarios import (
    FAULT_KINDS,
    ScenarioSpec,
    run_matrix,
    run_scenario,
    single_fault_spec,
)
from repro.sim.rng import derive_seed

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# seed derivation
# ---------------------------------------------------------------------------


def test_derive_seed_is_deterministic_and_path_sensitive():
    assert derive_seed(1, "fuzz", 0) == derive_seed(1, "fuzz", 0)
    assert derive_seed(1, "fuzz", 0) != derive_seed(1, "fuzz", 1)
    assert derive_seed(1, "fuzz", 0) != derive_seed(2, "fuzz", 0)
    assert derive_seed(1, "fuzz", 0) != derive_seed(1, "matrix", 0)
    # Component boundaries are part of the derivation: names that merely
    # concatenate identically must not collide.
    assert derive_seed(1, "fuzz", 11) != derive_seed(1, "fuzz1", 1)
    assert derive_seed(1, "ab", "c") != derive_seed(1, "abc")
    assert derive_seed(1, "a", "bc") != derive_seed(1, "abc")


# ---------------------------------------------------------------------------
# source fingerprint
# ---------------------------------------------------------------------------


def test_source_fingerprint_is_stable_and_tree_sensitive(tmp_path):
    tree_a = tmp_path / "a"
    tree_a.mkdir()
    (tree_a / "mod.py").write_text("x = 1\n")
    tree_b = tmp_path / "b"
    tree_b.mkdir()
    (tree_b / "mod.py").write_text("x = 2\n")
    assert source_fingerprint(tree_a) == source_fingerprint(tree_a)
    assert source_fingerprint(tree_a) != source_fingerprint(tree_b)


def test_default_fingerprint_covers_the_repro_package():
    # One digest for the whole package, memoized per process.
    assert source_fingerprint() == source_fingerprint()
    assert len(source_fingerprint()) == 64


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------


def test_cache_key_depends_on_task_payload_and_source(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    key = cache.key("scenario", {"a": 1})
    assert key == cache.key("scenario", {"a": 1})
    assert key != cache.key("scenario", {"a": 2})
    assert key != cache.key("figure", {"a": 1})
    assert key != ResultCache(root=tmp_path, fingerprint="f2").key("scenario", {"a": 1})


def test_cache_roundtrip_and_miss_counting(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    key = cache.key("figure", {"name": "x"})
    assert cache.get(key) is None
    cache.put(key, {"rows": [1, 2, 3]})
    assert cache.get(key) == {"rows": [1, 2, 3]}
    assert cache.misses == 1 and cache.hits == 1


def test_cache_treats_corrupt_entries_as_misses(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    key = cache.key("figure", {"name": "x"})
    cache.put(key, {"ok": True})
    cache._path(key).write_text("{not json")
    assert cache.get(key) is None


def test_prune_drops_stale_entries_but_hits_refresh_recency(tmp_path):
    import os
    import time

    cache = ResultCache(root=tmp_path, fingerprint="f1")
    stale_key = cache.key("figure", {"name": "stale"})
    live_key = cache.key("figure", {"name": "live"})
    cache.put(stale_key, {"v": 1})
    cache.put(live_key, {"v": 2})
    old = time.time() - 120
    os.utime(cache._path(stale_key), (old, old))
    os.utime(cache._path(live_key), (old, old))
    orphan = cache._path(stale_key).with_suffix(".tmp")  # interrupted write
    orphan.write_text("partial")
    os.utime(orphan, (old, old))
    assert cache.get(live_key) is not None  # hit re-touches the entry
    assert cache.prune(max_age_seconds=60) == 2
    assert cache.get(stale_key) is None
    assert not orphan.exists()
    assert cache.get(live_key) == {"v": 2}


def test_source_change_invalidates_every_entry(tmp_path):
    # Same payload, different source fingerprint: the new cache must not
    # serve the old entry (a false hit would return stale results).
    before = ResultCache(root=tmp_path, fingerprint="before")
    key = before.key("figure", {"name": "x"})
    before.put(key, {"stale": True})
    after = ResultCache(root=tmp_path, fingerprint="after")
    assert after.get(after.key("figure", {"name": "x"})) is None


# ---------------------------------------------------------------------------
# dispatcher
# ---------------------------------------------------------------------------


def test_task_registry_knows_the_builtin_kinds():
    assert {"scenario", "figure", "ablation", "triage-minimize"} <= set(task_names())
    with pytest.raises(KeyError):
        get_task("no-such-task")


SMALL_SPECS = [
    single_fault_spec("pbft", "crash", f=1, duration=0.2, seed=1),
    single_fault_spec("hotstuff", "A1", f=1, duration=0.2, seed=2),
    single_fault_spec("spotless", "partition", f=1, duration=0.2, seed=3),
]


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
def test_parallel_dispatch_matches_serial_run_in_order():
    serial = [run_scenario(spec) for spec in SMALL_SPECS]
    parallel = Dispatcher(workers=2).run("scenario", SMALL_SPECS)
    assert [r.spec.name for r in parallel] == [s.name for s in SMALL_SPECS]
    assert [r.summary_digest() for r in parallel] == [r.summary_digest() for r in serial]
    assert [r.committed_per_replica for r in parallel] == [
        r.committed_per_replica for r in serial
    ]


def test_dispatcher_serves_unchanged_cells_from_the_cache(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="pinned")
    first = Dispatcher(workers=1, cache=cache)
    fresh = first.run("scenario", SMALL_SPECS[:2])
    assert first.last_stats.executed == 2 and first.last_stats.cache_hits == 0
    second = Dispatcher(workers=1, cache=ResultCache(root=tmp_path, fingerprint="pinned"))
    cached = second.run("scenario", SMALL_SPECS[:2])
    assert second.last_stats.executed == 0 and second.last_stats.cache_hits == 2
    assert [r.summary_digest() for r in cached] == [r.summary_digest() for r in fresh]
    assert [r.row() for r in cached] == [r.row() for r in fresh]


def test_run_matrix_with_workers_and_cache_matches_plain_run_matrix(tmp_path):
    plain = run_matrix(SMALL_SPECS[:2])
    cached = run_matrix(
        SMALL_SPECS[:2],
        workers=1,
        cache=ResultCache(root=tmp_path, fingerprint="pinned"),
    )
    assert [r.summary_digest() for r in plain] == [r.summary_digest() for r in cached]


def test_figure_and_ablation_cells_match_direct_calls():
    rows = Dispatcher().run("figure", [{"name": "fig7b-batching", "kwargs": {}}])[0]
    assert rows == experiments.batching()
    rows = Dispatcher().run("ablation", [{"name": "commit-rule"}])[0]
    assert rows == ablations.commit_rule_safety()


def test_figure_kwargs_reach_the_experiment():
    rows = Dispatcher().run(
        "figure", [{"name": "fig7a-scalability", "kwargs": {"replica_counts": [4]}}]
    )[0]
    assert {row["replicas"] for row in rows} == {4}


def test_every_cli_name_has_a_registered_experiment():
    from repro import cli

    assert set(cli.FIGURES) == set(experiments.FIGURE_EXPERIMENTS)
    assert set(cli.ABLATIONS) == set(ablations.ABLATION_EXPERIMENTS)
    with pytest.raises(KeyError):
        experiments.run_figure("fig99-unknown")
    with pytest.raises(KeyError):
        ablations.run_ablation("no-such-ablation")


# ---------------------------------------------------------------------------
# workers validation and fault isolation
# ---------------------------------------------------------------------------


def test_dispatcher_rejects_zero_and_negative_workers():
    # workers=0 used to be silently coerced to 1 by `workers if workers
    # else 1` — an accidental serial run instead of a clear error.
    with pytest.raises(ValueError):
        Dispatcher(workers=0)
    with pytest.raises(ValueError):
        Dispatcher(workers=-1)
    with pytest.raises(ValueError):
        Dispatcher(on_error="ignore")
    assert Dispatcher().workers == 1
    assert Dispatcher(workers=None).workers == 1
    assert Dispatcher(workers=4).workers == 4


def _run_exploding_cell(payload):
    if payload.get("boom"):
        raise RuntimeError(f"cell {payload['i']} exploded")
    return {"i": payload["i"]}


register_task(
    DispatchTask(
        name="test-exploding",
        run=_run_exploding_cell,
        payload_json=lambda payload: {"i": payload["i"]},
        encode=lambda value: value,
        decode=lambda value: value,
    )
)

EXPLODING_PAYLOADS = [{"i": 0}, {"i": 1, "boom": True}, {"i": 2}]


def test_raising_cell_no_longer_aborts_the_campaign():
    # One bad cell used to tear down pool.map and discard every completed
    # cell's work; now it comes back as a tagged CellFailure record.
    dispatcher = Dispatcher(on_error="collect")
    results = dispatcher.run("test-exploding", EXPLODING_PAYLOADS)
    assert results[0] == {"i": 0} and results[2] == {"i": 2}
    failure = results[1]
    assert isinstance(failure, CellFailure)
    assert failure.index == 1
    assert failure.error_type == "RuntimeError"
    assert "cell 1 exploded" in failure.message
    assert "RuntimeError" in failure.traceback
    stats = dispatcher.last_stats
    assert stats.total == 3 and stats.failed == 1 and stats.executed == 3
    assert stats.wall_seconds >= 0.0
    assert "1 failed" in stats.summary()


def test_on_error_raise_surfaces_failures_after_completion():
    dispatcher = Dispatcher()  # on_error="raise" is the default
    with pytest.raises(DispatchError) as excinfo:
        dispatcher.run("test-exploding", EXPLODING_PAYLOADS)
    assert len(excinfo.value.failures) == 1
    assert excinfo.value.failures[0].index == 1
    # The healthy cells still completed before the aggregate raise.
    assert dispatcher.last_stats.failed == 1
    assert dispatcher.last_stats.executed == 3


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
def test_raising_cell_is_isolated_on_the_pool_too():
    dispatcher = Dispatcher(workers=2, on_error="collect")
    results = dispatcher.run("test-exploding", EXPLODING_PAYLOADS)
    assert results[0] == {"i": 0} and results[2] == {"i": 2}
    assert isinstance(results[1], CellFailure)
    assert dispatcher.last_stats.failed == 1


def test_stats_summary_mentions_every_account():
    from repro.dispatch import DispatchStats

    stats = DispatchStats(
        total=5, cache_hits=2, executed=3, workers=2, failed=1, wall_seconds=1.25
    )
    summary = stats.summary()
    assert "5 cells: 2 cached, 3 executed" in summary
    assert "1 failed" in summary and "2 worker(s)" in summary and "1.2s" in summary


# ---------------------------------------------------------------------------
# fuzzer
# ---------------------------------------------------------------------------


def test_fuzz_matrix_is_deterministic_per_seed():
    assert fuzz_matrix(8, seed=5) == fuzz_matrix(8, seed=5)
    assert fuzz_matrix(8, seed=5) != fuzz_matrix(8, seed=6)
    assert fuzz_matrix(8, seed=5)[3] == fuzz_spec(5, 3)


def test_fuzz_specs_stay_inside_the_threat_model():
    for spec in fuzz_matrix(32, seed=7):
        # Constructing the spec already ran validation; check the fuzz
        # policy on top: every window heals (so liveness is always judged),
        # at most f replicas ever misbehave, recovery stays enabled.
        assert spec.heal_time() is not None
        assert spec.strict_liveness
        assert spec.checkpoint_interval > 0
        assert spec.f in (1, 2)
        misbehaving = set()
        for event in spec.events:
            assert event.kind in FAULT_KINDS
            misbehaving.update(event.replicas)
            if event.kind == "partition":
                isolated = event.groups[1]
                misbehaving.update(isolated)
                # The honest majority and every client stay together.
                majority = set(event.groups[0])
                n = spec.resolved_replicas()
                assert set(range(n, n + spec.clients)) <= majority
        assert len(misbehaving) <= spec.f


def test_fuzz_events_are_sorted_chronologically():
    # Archived and minimized specs read top-to-bottom as a timeline.
    for spec in fuzz_matrix(32, seed=7):
        starts = [event.at for event in spec.events]
        assert starts == sorted(starts)


def test_fuzz_composes_multi_fault_scripts():
    specs = fuzz_matrix(32, seed=7)
    assert any(len(spec.events) > 1 for spec in specs)
    kinds = {event.kind for spec in specs for event in spec.events}
    assert len(kinds) >= 5  # the campaign actually mixes fault families


def test_fuzz_spec_json_roundtrip_is_exact():
    for spec in fuzz_matrix(8, seed=9):
        blob = json.dumps(spec.to_json_dict())
        assert ScenarioSpec.from_json_dict(json.loads(blob)) == spec


def test_tampered_archive_fails_validation():
    data = fuzz_spec(9, 0).to_json_dict()
    data["protocol"] = "raft"
    with pytest.raises(ValueError):
        ScenarioSpec.from_json_dict(data)
    data = fuzz_spec(9, 0).to_json_dict()
    data["format"] = 99
    with pytest.raises(ValueError):
        ScenarioSpec.from_json_dict(data)
