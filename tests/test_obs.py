"""Tests for the observability subsystem: tracer, exporters, flight recording."""

import json

import pytest

from repro.obs import (
    Tracer,
    load_trace,
    timeseries_json,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_timeseries_csv,
)
from repro.scenarios import overload_spec, single_fault_spec
from repro.scenarios.runner import ScenarioResult, ScenarioRunner, run_scenario
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRegistry, TimeSeries


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------


def test_tracer_records_spans_instants_flows_and_counters():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.register_track(0, "replica-0")
    token = tracer.begin(0, "view-change", "view-change v0->v1", from_view=0)
    sim.run_for(0.5)
    tracer.end(token, entered_view=1)
    tracer.instant(0, "lifecycle", "commit", position=3)
    flow = tracer.flow_begin(0, "PrepareMessage", size=120)
    sim.run_for(0.1)
    tracer.flow_end(flow, "replica-1", "PrepareMessage")
    tracer.counter("queue-depth/r0", 7)
    records = tracer.records()
    kinds = [record["kind"] for record in records]
    assert kinds == ["span", "instant", "flow_s", "flow_f", "counter"]
    span = records[0]
    assert span["track"] == "replica-0"
    assert span["start"] == 0.0 and span["end"] == 0.5
    assert span["args"] == {"from_view": 0, "entered_view": 1}
    assert records[2]["id"] == records[3]["id"]


def test_tracer_ring_buffer_keeps_the_trailing_window():
    sim = Simulator()
    tracer = Tracer(sim, capacity=10)
    for index in range(25):
        tracer.instant(0, "lifecycle", f"event-{index}")
    assert len(tracer) == 10
    assert tracer.recorded_total == 25
    assert tracer.dropped_records == 15
    names = [record["name"] for record in tracer.records()]
    assert names == [f"event-{index}" for index in range(15, 25)]


def test_tracer_dump_synthesizes_open_spans_with_null_end():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.begin(0, "view-change", "wedged view change")
    sim.run_for(1.0)
    dump = tracer.dump()
    assert dump["format"] >= 1
    assert dump["end_time"] == 1.0
    open_records = [record for record in dump["records"] if record["end"] is None]
    assert len(open_records) == 1
    assert open_records[0]["name"] == "wedged view change"
    # end() on a never-begun or None token is a harmless no-op.
    tracer.end(None)
    tracer.end(999)


def test_tracer_summary_counts_kinds_and_categories():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.end(tracer.begin(0, "progress-deadline", "progress i0 v0"))
    tracer.instant(1, "lifecycle", "submit")
    summary = tracer.summary()
    assert summary["by_kind"] == {"instant": 1, "span": 1}
    assert summary["span_categories"] == {"progress-deadline": 1}
    assert summary["records"] == 2


# ----------------------------------------------------------------------
# chrome trace export
# ----------------------------------------------------------------------


def _small_dump():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.register_track(0, "replica-0")
    tracer.register_track(1, "replica-1")
    token = tracer.begin(0, "view-change", "view-change v0->v1")
    flow = tracer.flow_begin(0, "PrepareMessage")
    sim.run_for(0.2)
    tracer.flow_end(flow, 1, "PrepareMessage")
    tracer.end(token)
    tracer.instant(1, "lifecycle", "commit")
    tracer.counter("queue-depth/r0", 3)
    tracer.begin(1, "state-transfer", "wedged state transfer")  # stays open
    return tracer.dump()


def test_to_chrome_trace_emits_a_valid_document():
    document = to_chrome_trace(_small_dump())
    counts = validate_chrome_trace(document)
    assert counts["X"] >= 3  # the span, the open span, and two flow anchors
    assert counts["s"] == 1 and counts["f"] == 1
    assert counts["i"] == 1 and counts["C"] == 1
    # Thread metadata names every row, spans land on "<track> · <category>".
    names = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert "replica-0 · view-change" in names
    assert "replica-1" in names
    # The open span was clamped to the recording end and tagged.
    open_slices = [
        event
        for event in document["traceEvents"]
        if event["ph"] == "X" and event.get("args", {}).get("open")
    ]
    assert len(open_slices) == 1


def test_to_chrome_trace_drops_unmatched_flow_halves():
    sim = Simulator()
    tracer = Tracer(sim, capacity=1)
    flow = tracer.flow_begin(0, "Msg")
    tracer.flow_end(flow, 1, "Msg")  # evicts the send half from the ring
    document = to_chrome_trace(tracer.dump())
    counts = validate_chrome_trace(document)
    assert counts.get("s", 0) == 0 and counts.get("f", 0) == 0


def test_validate_chrome_trace_rejects_malformed_documents():
    with pytest.raises(ValueError):
        validate_chrome_trace({"events": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "ts": 0}]})
    with pytest.raises(ValueError):  # X without dur
        validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "ts": 0}]})
    with pytest.raises(ValueError):  # unbalanced flow id
        validate_chrome_trace(
            {"traceEvents": [{"ph": "s", "name": "x", "pid": 1, "tid": 1, "ts": 0, "id": 9}]}
        )
    with pytest.raises(ValueError):  # counter without numeric args
        validate_chrome_trace(
            {"traceEvents": [{"ph": "C", "name": "x", "pid": 1, "ts": 0, "args": {"v": "hi"}}]}
        )


def test_write_chrome_trace_round_trips(tmp_path):
    path = tmp_path / "trace.json"
    counts = write_chrome_trace(_small_dump(), path)
    assert sum(counts.values()) == len(load_trace(path)["traceEvents"])


def test_timeseries_exports(tmp_path):
    series = TimeSeries(name="obs.frontier.r0", bucket_width=0.05)
    series.record(0.01, 4)
    series.record(0.06, 9)
    other = TimeSeries(name="obs.view.r0", bucket_width=0.05)
    other.record(0.02, 1)
    document = timeseries_json([other, series])
    assert [entry["name"] for entry in document["series"]] == [
        "obs.frontier.r0",
        "obs.view.r0",
    ]
    assert document["series"][0]["total"] == 13
    path = tmp_path / "telemetry.csv"
    rows = write_timeseries_csv([series, other], path)
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "series,bucket_start,value"
    assert rows == len(lines) - 1 == 3


# ----------------------------------------------------------------------
# traced scenario runs
# ----------------------------------------------------------------------


def test_traced_pbft_run_contains_episode_spans_and_flows():
    spec = single_fault_spec("pbft", "A2", f=1, duration=0.2, seed=3)
    runner = ScenarioRunner(spec)
    tracer = Tracer(runner.cluster.simulator, capacity=None)
    runner.tracer = tracer
    runner.cluster.attach_tracer(tracer, telemetry_interval=spec.check_interval)
    runner.run()
    summary = tracer.summary()
    assert "progress-deadline" in summary["span_categories"]
    assert summary["by_kind"].get("flow_s", 0) > 0
    assert summary["by_kind"].get("counter", 0) > 0
    assert any(track.startswith("replica-") for track in summary["tracks"])
    assert any(track.startswith("client-") for track in summary["tracks"])
    # The whole recording exports to a structurally valid Perfetto document.
    validate_chrome_trace(to_chrome_trace(tracer.dump()))
    # The sampler mirrored its gauges into the metrics registry.
    names = {series.name for series in runner.cluster.metrics.series()}
    assert "obs.frontier.r0" in names and "obs.in_flight" in names


@pytest.mark.parametrize("protocol,fault", [("pbft", "crash"), ("rcc", "A2")])
def test_flight_recording_preserves_golden_digests(protocol, fault):
    spec = single_fault_spec(protocol, fault, f=1, duration=0.2, seed=7)
    plain = run_scenario(spec)
    traced = run_scenario(spec, flight=True)
    assert plain.summary_digest() == traced.summary_digest()
    assert plain.committed_per_replica == traced.committed_per_replica


def test_violation_auto_dumps_the_flight_recorder_window():
    # require_breach with load far below the breach thresholds: the oracle
    # deterministically reports slo-no-breach, which must freeze the ring.
    spec = overload_spec(
        "pbft",
        duration=0.3,
        base_rate=40.0,
        spike_rate=60.0,
        p99_ceiling=10.0,
        max_queue_depth=10**6,
    )
    result = run_scenario(spec, flight=True)
    assert result.violations
    assert result.trace_dump is not None
    assert result.trace_dump["records"]
    # The dump is JSON-round-trippable through the result envelope.
    restored = ScenarioResult.from_json_dict(
        json.loads(json.dumps(result.to_json_dict()))
    )
    assert restored.trace_dump == result.trace_dump
    assert restored.counters_per_replica == result.counters_per_replica
    assert restored.summary_digest() == result.summary_digest()


def test_untraced_run_has_no_dump_and_tolerant_decode():
    spec = single_fault_spec("pbft", "crash", f=1, duration=0.1, seed=1)
    result = run_scenario(spec)
    assert result.trace_dump is None
    # Cached results from before these fields existed decode fine.
    data = result.to_json_dict()
    data.pop("trace_dump")
    data.pop("counters_per_replica")
    restored = ScenarioResult.from_json_dict(data)
    assert restored.trace_dump is None
    assert restored.counters_per_replica == ()


# ----------------------------------------------------------------------
# metrics satellites
# ----------------------------------------------------------------------


def test_snapshot_includes_percentiles_and_series_totals():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in [0.01, 0.02, 0.03, 0.5]:
        histogram.observe(value)
    registry.time_series("throughput", 1.0).record(0.5, 10)
    registry.time_series("throughput", 1.0).record(1.5, 20)
    snapshot = registry.snapshot()
    assert snapshot["latency.p50"] == 0.02
    assert snapshot["latency.p99"] == 0.5
    assert snapshot["latency.max"] == 0.5
    assert snapshot["throughput.total"] == 30


def test_counters_accumulate_exact_integers():
    registry = MetricsRegistry()
    counter = registry.counter("network.messages_sent")
    for _ in range(10**5):
        counter.increment()
    assert counter.value == 10**5
    assert isinstance(counter.value, int)
    counter.increment(0.5)  # fractional amounts widen to float
    assert counter.value == pytest.approx(10**5 + 0.5)
