"""Tests for the unified runtime layer (mempool, pipeline, quorums).

The final test pins the fixed-seed state digest of every protocol to the
value the pre-refactor per-protocol implementations produced, so any change
to the shared runtime that alters replica behaviour is caught immediately.
"""

import pytest

from repro.bench.cluster import SimulatedCluster
from repro.ledger.execution import ExecutionEngine
from repro.ledger.kvtable import KeyValueTable
from repro.ledger.ledger import Ledger
from repro.runtime import AdmitResult, ExecutionPipeline, Mempool, QuorumParams
from repro.workload.requests import Operation, Transaction


def make_txn(sequence, client_id=1):
    return Transaction(
        client_id=client_id, sequence=sequence, operations=(Operation.write(sequence, b"v"),)
    )


# ---------------------------------------------------------------------------
# QuorumParams
# ---------------------------------------------------------------------------


def test_quorum_params_spotless_vs_bft():
    # n = 7 is not of the form 3f + 1, so the two quorum rules diverge.
    spotless = QuorumParams.spotless(7)
    bft = QuorumParams.bft(7)
    assert spotless.f == bft.f == 2
    assert spotless.quorum == 5
    assert bft.quorum == 5
    spotless6 = QuorumParams.spotless(6)
    bft6 = QuorumParams.bft(6)
    assert spotless6.quorum == 5  # n - f = 6 - 1
    assert bft6.quorum == 3  # 2f + 1
    assert spotless.weak_quorum == bft.weak_quorum == 3
    assert list(spotless.replica_ids()) == list(range(7))


def test_quorum_params_rejects_tiny_clusters():
    with pytest.raises(ValueError):
        QuorumParams.bft(3)


# ---------------------------------------------------------------------------
# Mempool
# ---------------------------------------------------------------------------


def test_mempool_fifo_order():
    pool = Mempool()
    txns = [make_txn(i) for i in range(5)]
    for txn in txns:
        assert pool.admit(txn) is AdmitResult.NEW
    batch = pool.take_batch(3)
    assert batch == tuple(t.digest() for t in txns[:3])
    assert pool.take_batch(10) == tuple(t.digest() for t in txns[3:])
    assert pool.take_batch(10) is None
    assert pool.take_batch(10, allow_empty=True) == ()


def test_mempool_dedup_and_executed_skip():
    pool = Mempool()
    txn = make_txn(0)
    assert pool.admit(txn) is AdmitResult.NEW
    assert pool.admit(txn) is AdmitResult.DUPLICATE
    assert pool.pending_count() == 1
    pool.mark_executed(txn.digest())
    assert pool.admit(txn) is AdmitResult.EXECUTED
    # Executed digests are skipped lazily at batch time.
    assert pool.take_batch(10) is None


def test_mempool_retransmission_requeues_abandoned_proposal():
    pool = Mempool()
    txn = make_txn(0)
    pool.admit(txn)
    assert pool.take_batch(1) == (txn.digest(),)
    assert pool.is_proposed(txn.digest())
    # A retransmission of a proposed-but-unexecuted request queues it again
    # so a proposal that died on an abandoned branch is eventually retried.
    assert pool.admit(txn) is AdmitResult.DUPLICATE
    assert pool.pending_digests() == (txn.digest(),)
    assert not pool.is_proposed(txn.digest())
    # While it is queued, further retransmissions are no-ops.
    pool.admit(txn)
    assert pool.pending_count() == 1


def test_mempool_requeue_restores_head_order():
    pool = Mempool()
    txns = [make_txn(i) for i in range(4)]
    for txn in txns:
        pool.admit(txn)
    batch = pool.take_batch(2)
    pool.requeue(batch)
    # The requeued batch sits ahead of the untaken digests, in batch order.
    assert pool.take_batch(10) == tuple(t.digest() for t in txns)


def test_mempool_per_shard_isolation():
    pool = Mempool(num_shards=3)
    by_shard = {0: make_txn(0), 1: make_txn(1), 2: make_txn(2)}
    for shard, txn in by_shard.items():
        pool.admit(txn, shard=shard)
    assert pool.pending_per_shard() == {0: 1, 1: 1, 2: 1}
    assert pool.pending_count() == 3
    assert pool.has_pending(1)
    assert pool.take_batch(10, shard=1) == (by_shard[1].digest(),)
    assert not pool.has_pending(1)
    assert pool.pending_count(shard=0) == 1
    assert pool.pending_count() == 2


def test_mempool_register_payload_does_not_queue():
    pool = Mempool()
    txn = make_txn(0)
    digest = pool.register_payload(txn)
    assert pool.get(digest) is txn
    assert digest in pool
    assert pool.pending_count() == 0


# ---------------------------------------------------------------------------
# ExecutionPipeline
# ---------------------------------------------------------------------------


def make_pipeline(num_shards=1, resolve_noop=None, inform=None):
    pool = Mempool(num_shards=num_shards)
    table = KeyValueTable()
    engine = ExecutionEngine(table=table, ledger=Ledger())
    pipeline = ExecutionPipeline(
        mempool=pool,
        engine=engine,
        protocol_name="test",
        quorum=3,
        inform=inform,
        resolve_noop=resolve_noop,
    )
    return pool, pipeline


def test_pipeline_gap_stalls_execution_until_filled():
    pool, pipeline = make_pipeline()
    first, second = make_txn(0), make_txn(1)
    pool.admit(first)
    pool.admit(second)
    pipeline.deliver(1, (second.digest(),))
    assert pipeline.executed_transactions == 0
    assert pipeline.next_execution_position == 0
    pipeline.deliver(0, (first.digest(),))
    assert pipeline.executed_transactions == 2
    assert pipeline.next_execution_position == 2
    assert pipeline.decided_positions() == [0, 1]


def test_pipeline_missing_payload_stalls_then_resumes():
    pool, pipeline = make_pipeline()
    txn = make_txn(0)
    pipeline.deliver(0, (txn.digest(),))
    assert pipeline.executed_transactions == 0
    pool.admit(txn)  # late payload dissemination
    pipeline.advance()
    assert pipeline.executed_transactions == 1


def test_pipeline_resolves_reconstructible_noops():
    noop = Transaction(client_id=-1, sequence=0, operations=(Operation.noop(),))

    def resolve(digest, position):
        return noop if digest == noop.digest() else None

    pool, pipeline = make_pipeline(resolve_noop=resolve)
    pipeline.deliver(0, (noop.digest(),))
    # The no-op executes (unblocking later positions) but is not counted or
    # informed, and its payload is now locally known.
    assert pipeline.next_execution_position == 1
    assert pipeline.executed_transactions == 0
    assert pool.get(noop.digest()) is noop


def test_pipeline_informs_clients_once_per_fresh_transaction():
    informed = []
    pool, pipeline = make_pipeline(inform=informed.append)
    txn = make_txn(0)
    pool.admit(txn)
    pipeline.deliver(0, (txn.digest(),))
    # A second decision carrying the same digest does not re-execute it.
    pipeline.deliver(1, (txn.digest(),))
    assert informed == [txn]
    assert pipeline.executed_transactions == 1
    assert pipeline.decided_batches == 2


def test_pipeline_duplicate_position_is_ignored():
    pool, pipeline = make_pipeline()
    first, second = make_txn(0), make_txn(1)
    pool.admit(first)
    pool.admit(second)
    pipeline.deliver(0, (first.digest(),))
    pipeline.deliver(0, (second.digest(),))
    assert pipeline.decided_batches == 1
    assert pipeline.decided_items() == [(0, (first.digest(),))]


# ---------------------------------------------------------------------------
# Transaction digest memoization
# ---------------------------------------------------------------------------


def test_transaction_digest_is_memoized():
    txn = make_txn(0)
    assert txn.digest() is txn.digest()
    # Equality and hashing are unaffected by the cached digest.
    twin = make_txn(0)
    twin.digest()
    assert txn == twin and hash(txn) == hash(twin)


# ---------------------------------------------------------------------------
# Cross-protocol behavioural pin: the runtime refactor preserved every
# protocol's fixed-seed execution (digests recorded from the pre-refactor
# implementations).  Run with checkpoint_interval=0 — which must make the
# recovery subsystem fully dormant — so these digests double as a regression
# test that disabling checkpointing restores the exact pre-recovery wire
# behaviour.
# ---------------------------------------------------------------------------

GOLDEN_STATE = {
    "spotless": ("8210f86bffb315451ab841e1cedf0bc36055dda7887d552938142a4c4f178dcd", 392),
    "pbft": ("ba5344eabfba8c0b66e1b896fc167ac850d297a8062e252c420366286690eccf", 969),
    "rcc": ("7565334a04636776fd7b427d1953ccc6ac91019d9c47fd67e4be1bb8c95859d4", 868),
    "hotstuff": ("ce6dd1287feb8a446767a693debc56ee70f78dcaa3761b10218fa7c90383ba32", 411),
    "narwhal-hs": ("013921b3afb74e8a49e267687e071bfd611da027dd617845449c751ecc8ea97b", 407),
}


@pytest.mark.parametrize("protocol", sorted(GOLDEN_STATE))
def test_fixed_seed_state_digest_matches_pre_refactor_value(protocol):
    cluster = SimulatedCluster.for_protocol(
        protocol,
        num_replicas=4,
        batch_size=8,
        clients=3,
        outstanding_per_client=4,
        seed=7,
        checkpoint_interval=0,
    )
    cluster.run(duration=0.4)
    replica = cluster.replicas[0]
    digest, executed = GOLDEN_STATE[protocol]
    assert replica.state_digest().hex() == digest
    assert replica.executed_transactions == executed
    assert replica.checkpoints.votes_sent == 0  # recovery layer fully dormant
    cluster.assert_no_divergence()
