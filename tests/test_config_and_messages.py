"""Unit and property-based tests for the deployment configuration and the
SpotLess message vocabulary."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import proposal_digest
from repro.core.config import SpotLessConfig
from repro.core.messages import (
    AskMessage,
    Claim,
    CpEntry,
    InformMessage,
    ProposalForward,
    ProposeMessage,
    SyncMessage,
)


# ---------------------------------------------------------------------------
# configuration arithmetic
# ---------------------------------------------------------------------------


@given(st.integers(min_value=4, max_value=400))
@settings(max_examples=60, deadline=None)
def test_quorum_arithmetic_satisfies_the_bft_bounds(n):
    """n > 3f, quorum = n − f, and two quorums always intersect in f + 1 replicas."""
    config = SpotLessConfig(num_replicas=n)
    assert n > 3 * config.f
    assert config.quorum == n - config.f
    assert config.weak_quorum == config.f + 1
    # Quorum intersection: two sets of size n − f overlap in ≥ n − 2f ≥ f + 1.
    assert 2 * config.quorum - n >= config.weak_quorum


@given(st.integers(min_value=4, max_value=100), st.integers(min_value=0, max_value=200))
@settings(max_examples=60, deadline=None)
def test_primary_rotation_covers_every_replica_once_per_n_views(n, start_view):
    """Over any window of n consecutive views each replica is primary exactly once."""
    config = SpotLessConfig(num_replicas=n)
    primaries = [config.primary_of(0, view) for view in range(start_view, start_view + n)]
    assert sorted(primaries) == list(range(n))


@given(
    st.integers(min_value=4, max_value=64),
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=60, deadline=None)
def test_instances_in_the_same_view_have_distinct_primaries(n, instance, view):
    """Section 4.1: id(P_{i,v}) = (i + v) mod n gives each instance its own primary."""
    config = SpotLessConfig(num_replicas=n)
    instance = instance % n
    other = (instance + 1) % n
    assert config.primary_of(instance, view) != config.primary_of(other, view)


def test_with_instances_returns_modified_copy():
    config = SpotLessConfig(num_replicas=8)
    reduced = config.with_instances(2)
    assert reduced.num_instances == 2
    assert config.num_instances == 8
    assert reduced.num_replicas == config.num_replicas


def test_instance_count_validation():
    with pytest.raises(ValueError):
        SpotLessConfig(num_replicas=4, num_instances=5)
    with pytest.raises(ValueError):
        SpotLessConfig(num_replicas=3)
    with pytest.raises(ValueError):
        SpotLessConfig(num_replicas=4, batch_size=0)


# ---------------------------------------------------------------------------
# claims and CP entries
# ---------------------------------------------------------------------------


def test_failure_claim_has_no_digest():
    claim = Claim.failure(7)
    assert claim.is_failure
    assert claim.view == 7
    assert claim.statement() == (7, None)


def test_regular_claim_statement_pairs_view_and_digest():
    claim = Claim(view=3, digest=b"abc")
    assert not claim.is_failure
    assert claim.statement() == (3, b"abc")


def test_claims_with_different_digests_have_different_canonical_fields():
    first = Claim(view=3, digest=b"abc")
    second = Claim(view=3, digest=b"abd")
    assert first.canonical_fields() != second.canonical_fields()


def test_cp_entry_canonical_fields_round_trip():
    entry = CpEntry(view=5, digest=b"xyz")
    assert entry.canonical_fields() == (5, b"xyz")


# ---------------------------------------------------------------------------
# message canonical encodings and digests
# ---------------------------------------------------------------------------


def _propose(view=1, batch=(b"t",), parent=b"genesis", parent_view=0, instance=0):
    return ProposeMessage(
        instance=instance,
        view=view,
        transaction_digests=tuple(batch),
        parent_digest=parent,
        parent_view=parent_view,
    )


def test_proposal_digest_changes_with_every_field():
    base = _propose()
    variants = [
        _propose(view=2),
        _propose(batch=(b"u",)),
        _propose(parent=b"other"),
        _propose(parent_view=1),
        _propose(instance=1),
    ]
    digests = {proposal_digest(message) for message in [base] + variants}
    assert len(digests) == len(variants) + 1


def test_proposal_digest_is_deterministic():
    assert proposal_digest(_propose()) == proposal_digest(_propose())


@given(
    st.integers(min_value=0, max_value=1000),
    st.lists(st.binary(min_size=1, max_size=8), min_size=0, max_size=5),
)
@settings(max_examples=50, deadline=None)
def test_sync_canonical_fields_reflect_view_and_cp_set(view, digests):
    cp_set = tuple(CpEntry(view=index, digest=digest) for index, digest in enumerate(digests))
    message = SyncMessage(instance=0, view=view, claim=Claim.failure(view), cp_set=cp_set)
    fields = message.canonical_fields()
    assert fields[0] == "sync"
    assert fields[2] == view
    assert len(fields[4]) == len(cp_set)


def test_sync_retransmit_flag_is_part_of_the_canonical_encoding():
    plain = SyncMessage(instance=0, view=1, claim=Claim.failure(1))
    flagged = SyncMessage(instance=0, view=1, claim=Claim.failure(1), retransmit_flag=True)
    assert plain.canonical_fields() != flagged.canonical_fields()


def test_ask_and_forward_wrap_the_underlying_claim_and_proposal():
    claim = Claim(view=4, digest=b"p4")
    ask = AskMessage(instance=2, view=4, claim=claim)
    assert ask.canonical_fields()[0] == "ask"
    assert ask.canonical_fields()[3] == claim.canonical_fields()
    forward = ProposalForward(instance=2, propose=_propose())
    assert forward.canonical_fields()[0] == "forward"
    assert forward.canonical_fields()[2] == _propose().canonical_fields()


def test_inform_message_identifies_replica_client_and_transaction():
    inform = InformMessage(replica=3, client_id=9, transaction_digest=b"d")
    fields = inform.canonical_fields()
    assert fields == ("inform", 3, 9, b"d", True)


def test_messages_are_hashable_and_frozen():
    message = _propose()
    with pytest.raises(Exception):
        message.view = 2  # type: ignore[misc]
    assert {message: "ok"}[message] == "ok"
