"""In-process replays of the promoted regression corpus.

The two seed corpus entries were the repo's top open liveness bugs: minimized
fuzz findings where A2-style partial withholding wedged replicas forever.
Both are fixed and promoted to must-stay-clean regressions; these tests
replay the pinned specs verbatim (strict liveness on) and additionally
assert that the *fix mechanisms* visibly engaged — the liveness counters
prove the scenario still exercises the machinery rather than having drifted
into an easier schedule.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

CORPUS = Path(__file__).resolve().parent.parent / "fuzz-failures" / "corpus"


def _replay(name):
    data = json.loads((CORPUS / f"{name}.json").read_text())
    assert data["expected"] == "passing", f"{name} should be a promoted regression"
    spec = ScenarioSpec.from_json_dict(data["spec"])
    assert spec.strict_liveness
    return run_scenario(spec)


def test_fuzz_1_42_min_rcc_drip_feed_stays_clean():
    """Chained A2 windows against RCC: every replica must keep committing.

    Root cause was the progress timer being cancelled on any PrePrepare, so
    the withholding primaries never triggered a view change.  The deadline
    must now fire and replace them.
    """
    result = _replay("fuzz-1-42-min")
    assert result.violations == ()
    assert result.stragglers == ()
    assert result.counters["progress_timeout_fires"] > 0
    assert result.counters["view_changes"] > 0


def test_fuzz_1_44_min_narwhal_post_heal_catchup_stays_clean():
    """Healed partition + A2 against Narwhal-HS: no permanent stragglers.

    Root cause was chain sync only asking the revealing peer with no retry,
    plus no way to pull transaction payloads missed during the partition.
    The QC-gap request, target rotation and payload pull must all engage.
    """
    result = _replay("fuzz-1-44-min")
    assert result.violations == ()
    assert result.stragglers == ()
    assert result.counters["chain_syncs_requested"] > 0
    assert result.counters["chain_sync_rotations"] > 0
    assert result.counters["payload_pulls"] > 0


@pytest.mark.parametrize("name", sorted(p.stem for p in CORPUS.glob("*.json")))
def test_every_corpus_entry_is_a_passing_regression(name):
    """The corpus no longer carries 'expected' open bugs."""
    data = json.loads((CORPUS / f"{name}.json").read_text())
    assert data["expected"] == "passing", (
        f"corpus entry {name!r} is {data['expected']!r}; fix the bug and promote it "
        f"(CI runs `repro triage corpus --require-clean`)"
    )
