"""Tests for the model-versus-simulator cross-validation module."""

import pytest

from repro.analysis.validation import (
    ValidationPoint,
    cross_validate_protocols,
    failure_direction_check,
    rank_agreement,
    validation_report,
)


# ---------------------------------------------------------------------------
# rank agreement helper
# ---------------------------------------------------------------------------


def test_rank_agreement_is_one_for_identical_rankings():
    first = {"a": 3.0, "b": 2.0, "c": 1.0}
    second = {"a": 30.0, "b": 20.0, "c": 10.0}
    assert rank_agreement(first, second) == 1.0


def test_rank_agreement_is_zero_for_fully_reversed_rankings():
    first = {"a": 3.0, "b": 2.0, "c": 1.0}
    second = {"a": 1.0, "b": 2.0, "c": 3.0}
    assert rank_agreement(first, second) == 0.0


def test_rank_agreement_counts_partially_agreeing_pairs():
    first = {"a": 3.0, "b": 2.0, "c": 1.0}
    second = {"a": 3.0, "b": 1.0, "c": 2.0}  # only the b/c pair is swapped
    assert rank_agreement(first, second) == pytest.approx(2 / 3)


def test_rank_agreement_handles_disjoint_or_single_inputs():
    assert rank_agreement({"a": 1.0}, {"a": 5.0}) == 1.0
    assert rank_agreement({}, {}) == 1.0


# ---------------------------------------------------------------------------
# cross-validation runs
# ---------------------------------------------------------------------------


def test_cross_validation_produces_one_point_per_protocol():
    points = cross_validate_protocols(
        protocols=("spotless", "hotstuff"), num_replicas=4, duration=0.4, batch_size=5
    )
    assert [point.protocol for point in points] == ["spotless", "hotstuff"]
    for point in points:
        assert point.simulated_throughput > 0
        assert point.predicted_throughput > 0
        row = point.as_row()
        assert set(row) == {"protocol", "replicas", "simulated_txn_s", "model_txn_s"}


def test_model_and_simulator_agree_that_spotless_beats_hotstuff():
    points = cross_validate_protocols(
        protocols=("spotless", "hotstuff"), num_replicas=4, duration=0.6, batch_size=5
    )
    report = validation_report(points)
    assert report["rank_agreement"] == 1.0
    assert report["simulated_ranking"][-1] == "hotstuff"
    assert report["model_ranking"][-1] == "hotstuff"


def test_validation_report_lists_all_rows():
    points = [
        ValidationPoint(protocol="spotless", num_replicas=4, simulated_throughput=10.0, predicted_throughput=20.0),
        ValidationPoint(protocol="pbft", num_replicas=4, simulated_throughput=12.0, predicted_throughput=25.0),
    ]
    report = validation_report(points)
    assert len(report["rows"]) == 2
    assert report["simulated_ranking"] == ["pbft", "spotless"]
    assert report["model_ranking"] == ["pbft", "spotless"]
    assert report["rank_agreement"] == 1.0


def test_failures_reduce_throughput_in_both_model_and_simulator():
    outcome = failure_direction_check(num_replicas=4, duration=0.6, faulty=1)
    assert outcome["simulator_direction_ok"]
    assert outcome["model_direction_ok"]
    assert outcome["simulated_degraded"] <= outcome["simulated_healthy"]
    assert outcome["model_degraded"] <= outcome["model_healthy"]
