"""Tests for fault scheduling: apply/heal ordering and rule ownership."""

import pytest

from repro.bench.cluster import SimulatedCluster
from repro.core.config import SpotLessConfig
from repro.faults.attacks import attack_by_name
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.sim.network import Partition


def make_cluster():
    config = SpotLessConfig(num_replicas=4, batch_size=4)
    return SimulatedCluster.spotless(config, clients=2, outstanding_per_client=2)


# ---------------------------------------------------------------------------
# heal removes only the healed fault's own rules
# ---------------------------------------------------------------------------


def test_overlapping_attack_windows_do_not_heal_each_other():
    """Regression: ``clear_drop_rules`` used to remove *every* rule, so the
    first attack window to heal silently disabled all concurrent attacks."""
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    short = attack_by_name("A4", attackers=[1])
    long = attack_by_name("A2", attackers=[0], victims=[3])
    injector.launch_attack(short, at=0.0, until=0.1)
    injector.launch_attack(long, at=0.0, until=0.3)
    cluster.start()

    cluster.simulator.run_for(0.05)
    assert len(cluster.network._drop_rules) == 2
    cluster.simulator.run_for(0.1)  # now 0.15: short healed, long still active
    assert cluster.network._drop_rules == [long.should_drop]
    cluster.simulator.run_for(0.2)  # now 0.35: both healed
    assert cluster.network._drop_rules == []


def test_equivocation_attack_installs_and_removes_rewrite_rule():
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    attack = attack_by_name("A3", attackers=[3], victims=[0])
    injector.launch_attack(attack, at=0.05, until=0.15)
    cluster.start()

    assert cluster.network._rewrite_rules == []
    cluster.simulator.run_for(0.1)
    assert cluster.network._rewrite_rules == [attack.rewrite]
    assert cluster.network._drop_rules == [attack.should_drop]
    cluster.simulator.run_for(0.1)
    assert cluster.network._rewrite_rules == []
    assert cluster.network._drop_rules == []


def test_overlapping_down_windows_do_not_revive_each_other():
    """Regression: healing an inner crash/A1 window used to call
    ``set_node_down(replica, False)`` unconditionally, reviving a node whose
    outer window was still active."""
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    injector.crash_replicas([3], at=0.0, until=0.3)
    injector.launch_attack(attack_by_name("A1", attackers=[3]), at=0.1, until=0.2)
    cluster.start()

    cluster.simulator.run_for(0.25)  # inner A1 window healed, crash still active
    assert cluster.network.is_down(3)
    cluster.simulator.run_for(0.1)  # now 0.35: outer window healed too
    assert not cluster.network.is_down(3)


def test_overlapping_partitions_compose_and_heal_independently():
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    injector.partition([(0, 1), (2, 3)], at=0.0, until=0.3)
    injector.partition([(0, 2), (1, 3)], at=0.1, until=0.2)
    cluster.start()

    cluster.simulator.run_for(0.15)  # both active: only intersections allowed
    partition = cluster.network._partition
    assert not partition.allows(0, 1)  # forbidden by the second partition
    assert not partition.allows(0, 2)  # forbidden by the first partition
    assert partition.allows(0, 0)
    cluster.simulator.run_for(0.1)  # now 0.25: inner healed, outer remains
    partition = cluster.network._partition
    assert partition.allows(0, 1)
    assert not partition.allows(0, 3)
    cluster.simulator.run_for(0.1)  # now 0.35: all healed
    assert cluster.network._partition is None


# ---------------------------------------------------------------------------
# apply/heal ordering and bookkeeping
# ---------------------------------------------------------------------------


def test_fault_schedule_applies_and_heals_in_time_order():
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    injector.crash_replicas([3], at=0.2, until=0.4)
    injector.crash_replicas([2], at=0.1, until=0.3)
    cluster.start()
    cluster.simulator.run_for(0.5)
    assert [fault.replicas for fault in injector.applied] == [(2,), (3,)]
    assert [fault.replicas for fault in injector.healed] == [(2,), (3,)]
    assert not cluster.network.is_down(2)
    assert not cluster.network.is_down(3)


def test_partition_is_set_then_cleared():
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    injector.partition([(0, 1, 2), (3,)], at=0.1, until=0.2)
    cluster.start()

    cluster.simulator.run_for(0.15)
    partition = cluster.network._partition
    assert isinstance(partition, Partition)
    assert not partition.allows(0, 3)
    assert partition.allows(0, 2)
    cluster.simulator.run_for(0.1)
    assert cluster.network._partition is None


def test_non_responsive_attack_marks_attackers_down_symmetrically():
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    injector.launch_attack(attack_by_name("A1", attackers=[1, 2]), at=0.0, until=0.2)
    cluster.start()

    cluster.simulator.run_for(0.1)
    assert cluster.network.is_down(1) and cluster.network.is_down(2)
    assert not cluster.network.is_down(0)
    cluster.simulator.run_for(0.2)
    assert not cluster.network.is_down(1) and not cluster.network.is_down(2)


def test_latency_degradation_scales_and_restores_link_delays():
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    base_delay = cluster.network.config.base_delay
    base_jitter = cluster.network.config.jitter
    injector.degrade_latency(4.0, at=0.1, until=0.2)
    cluster.start()

    cluster.simulator.run_for(0.15)
    assert cluster.network.config.base_delay == base_delay * 4.0
    assert cluster.network.config.jitter == base_jitter * 4.0
    cluster.simulator.run_for(0.1)
    assert cluster.network.config.base_delay == base_delay
    assert cluster.network.config.jitter == base_jitter


def test_latency_restores_exactly_for_non_binary_factors():
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    base_delay = cluster.network.config.base_delay
    base_jitter = cluster.network.config.jitter
    # Overlapping windows with a factor that is not a power of two: the
    # baseline-snapshot restore must leave no floating-point drift behind.
    injector.degrade_latency(3.0, at=0.05, until=0.3)
    injector.degrade_latency(7.0, at=0.1, until=0.2)
    cluster.start()
    cluster.simulator.run_for(0.15)
    assert cluster.network.config.base_delay == pytest.approx(base_delay * 21.0)
    cluster.simulator.run_for(0.25)
    assert cluster.network.config.base_delay == base_delay
    assert cluster.network.config.jitter == base_jitter


def test_latency_scales_region_topology_delays():
    from repro.sim.network import NetworkConfig, RegionTopology

    topology = RegionTopology(regions=2)
    config = SpotLessConfig(num_replicas=4, batch_size=4)
    cluster = SimulatedCluster.spotless(
        config,
        clients=2,
        outstanding_per_client=2,
        network_config=NetworkConfig(topology=topology),
    )
    injector = FaultInjector(cluster)
    intra, inter = topology.intra_delay, topology.inter_delay
    injector.degrade_latency(4.0, at=0.05, until=0.15)
    cluster.start()
    cluster.simulator.run_for(0.1)
    # link() ignores base_delay when a topology is set, so the region delays
    # themselves must carry the degradation.
    assert topology.intra_delay == intra * 4.0
    assert topology.inter_delay == inter * 4.0
    cluster.simulator.run_for(0.1)
    assert topology.intra_delay == intra
    assert topology.inter_delay == inter


def test_reversed_fault_window_is_rejected():
    # A heal scheduled before its apply would fire first and the fault would
    # then stick for the rest of the run.
    cluster = make_cluster()
    injector = FaultInjector(cluster)
    with pytest.raises(ValueError):
        injector.crash_replicas([3], at=0.3, until=0.1)


def test_fault_schedule_kind_is_recorded():
    fault = FaultSchedule(at=0.1, kind="latency", factor=2.0, until=0.2)
    assert fault.kind == "latency"
    assert fault.factor == 2.0
    assert fault.until == 0.2
