"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(0.5, lambda: order.append("b"))
    sim.schedule(0.1, lambda: order.append("a"))
    sim.schedule(0.9, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_break_ties_by_priority_then_insertion():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("second"), priority=1)
    sim.schedule(1.0, lambda: order.append("first"), priority=0)
    sim.schedule(1.0, lambda: order.append("third"), priority=1)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_for_advances_relative_to_current_time():
    sim = Simulator()
    sim.run_for(3.0)
    assert sim.now == 3.0
    sim.run_for(2.0)
    assert sim.now == 5.0


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator(start_time=10.0)
    seen = []
    sim.schedule_at(12.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [12.0]


def test_stop_halts_the_run_loop():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first"]
    sim.run()
    assert order == ["first", "second"]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0.5, lambda: order.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 1.5


def test_max_events_guard_detects_runaway_loops():
    sim = Simulator(max_events=100)

    def rearm():
        sim.schedule(0.001, rearm)

    sim.schedule(0.001, rearm)
    with pytest.raises(SimulationError):
        sim.run(until=100.0)


def test_processed_and_pending_event_counters():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.run(until=1.5)
    assert sim.processed_events == 1


def test_trace_hook_sees_every_event():
    sim = Simulator()
    labels = []
    sim.set_trace(lambda event: labels.append(event.label))
    sim.schedule(0.1, lambda: None, label="one")
    sim.schedule(0.2, lambda: None, label="two")
    sim.run()
    assert labels == ["one", "two"]


def test_drain_cancels_a_batch_of_events():
    sim = Simulator()
    fired = []
    events = [sim.schedule(1.0, lambda: fired.append("x")) for _ in range(5)]
    sim.drain(events)
    sim.run()
    assert fired == []


def test_pending_events_excludes_cancelled_events():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    victim = sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    victim.cancel()
    assert sim.pending_events == 1
    # Cancelled events stay queued until lazily removed...
    assert sim.scheduled_events == 2
    # ...and double-cancel does not corrupt the live count.
    victim.cancel()
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0
    # Cancelling an event that already fired is a harmless no-op.
    keep.cancel()
    assert sim.pending_events == 0


def test_pending_events_tracks_window_pushback():
    sim = Simulator()
    # A cancelled event heads the queue: the run loop must drop it lazily
    # before the window check, then leave the 5.0 event in place (peeked,
    # not popped) because it lies beyond the window.
    head = sim.schedule(1.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    head.cancel()
    sim.run(until=2.0)
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0


# ----------------------------------------------------------------------
# schedule_call -> labelled-Event upgrade path (trace hook installed)
# ----------------------------------------------------------------------


def test_schedule_call_upgrades_to_labelled_events_when_tracing():
    sim = Simulator()
    labels = []
    sim.set_trace(lambda event: labels.append(event.label))
    order = []

    def deliver(tag):
        order.append(tag)

    # With a hook installed, the fast path falls back to full events whose
    # label is the callback's name, so traces remain complete.
    sim.schedule_call(0.1, deliver, ("a",))
    sim.schedule_call(0.2, deliver, ("b",))
    sim.run()
    assert order == ["a", "b"]
    assert labels == ["deliver", "deliver"]


def test_schedule_call_upgrade_mid_run_keeps_order_and_accounting():
    sim = Simulator()
    traced = []
    order = []

    def deliver(tag):
        order.append(tag)

    def install_hook():
        order.append("hook")
        sim.set_trace(lambda event: traced.append(event.label))
        # Scheduled after installation: upgraded to a labelled event.
        sim.schedule_call(0.1, deliver, ("after",))
        # One bare entry ("later") plus the upgraded event are still live.
        assert sim.pending_events == 2

    sim.schedule_call(0.1, deliver, ("before",))  # bare fast-path entry
    sim.schedule(0.2, install_hook, label="install")
    sim.schedule_call(0.4, deliver, ("later",))  # bare: predates the hook
    assert sim.pending_events == 3
    sim.run()
    assert order == ["before", "hook", "after", "later"]
    # The hook went live after the "install" event's own trace point, and
    # bare entries are invisible to it, so only the upgraded event traced.
    assert traced == ["deliver"]
    assert sim.pending_events == 0
    assert sim.processed_events == 4


def test_trace_hook_does_not_change_event_order_or_seq_interleaving():
    def drive(sim):
        order = []

        def note(tag):
            order.append(tag)

        # Same-time entries: ordering is decided purely by seq numbers,
        # which both the bare path and the upgraded path must consume
        # identically for determinism to hold with tracing on.
        sim.schedule_call(0.1, note, ("call-a",))
        sim.schedule(0.1, lambda: note("event-b"), label="b")
        sim.schedule_call(0.1, note, ("call-c",))
        sim.schedule(
            0.3, lambda: sim.schedule_call(0.0, note, ("nested",)), label="outer"
        )
        sim.run()
        return order

    plain = Simulator()
    traced = Simulator()
    traced.set_trace(lambda event: None)
    assert drive(plain) == drive(traced)
    assert plain.now == traced.now
    assert plain.processed_events == traced.processed_events
