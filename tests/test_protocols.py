"""Tests for the baseline protocols: PBFT, RCC, HotStuff and Narwhal-HS."""

import pytest

from repro.bench.cluster import SimulatedCluster
from repro.protocols.common import BftConfig
from repro.protocols.hotstuff.messages import QuorumCert
from repro.protocols.hotstuff.replica import GENESIS_NODE_DIGEST
from repro.protocols.pbft.core import PbftEnvironment, PbftInstanceCore
from repro.protocols.pbft.messages import (
    CommitMessage,
    ComplaintMessage,
    NewViewMessage,
    PrepareMessage,
    PrePrepareMessage,
    ViewChangeMessage,
)


# ---------------------------------------------------------------------------
# BftConfig
# ---------------------------------------------------------------------------


def test_bft_config_quorums_and_validation():
    config = BftConfig(num_replicas=7)
    assert config.f == 2
    assert config.quorum == 5
    assert config.weak_quorum == 3
    with pytest.raises(ValueError):
        BftConfig(num_replicas=2)
    with pytest.raises(ValueError):
        BftConfig(num_replicas=4, pipeline_depth=0)


# ---------------------------------------------------------------------------
# PBFT core state machine (manual harness)
# ---------------------------------------------------------------------------


class PbftHarness:
    """Connects PBFT cores of all replicas with manual delivery queues."""

    def __init__(self, num_replicas=4, batches=None, **config_kwargs):
        self.config = BftConfig(num_replicas=num_replicas, pipeline_depth=4, **config_kwargs)
        self.queues = []
        self.decisions = {r: [] for r in range(num_replicas)}
        self.batches = {r: list(batches or []) for r in range(num_replicas)}
        self.timers = {r: [] for r in range(num_replicas)}
        self.cores = {}
        for replica in range(num_replicas):
            self.cores[replica] = PbftInstanceCore(
                instance_id=0,
                config=self.config,
                environment=PbftEnvironment(
                    replica_id=replica,
                    broadcast=lambda m, _r=replica: self.queues.append((_r, None, m)),
                    send=lambda to, m, _r=replica: self.queues.append((_r, to, m)),
                    set_timer=self._set_timer(replica),
                    cancel_timer=lambda handle: handle.update(cancelled=True),
                    next_batch=lambda instance, _r=replica: self._next_batch(_r),
                    on_decide=lambda instance, seq, view, digests, _r=replica: self.decisions[_r].append(
                        (seq, view, digests)
                    ),
                    pending_requests=lambda _r=replica: len(self.batches[_r]),
                ),
            )

    def _set_timer(self, replica):
        def setter(name, delay, callback):
            handle = {"cancelled": False, "callback": callback}
            self.timers[replica].append(handle)
            return handle

        return setter

    def _next_batch(self, replica):
        if self.batches[replica]:
            return self.batches[replica].pop(0)
        return None

    def deliver_all(self, drop=None, max_rounds=50):
        rounds = 0
        while self.queues and rounds < max_rounds:
            rounds += 1
            batch, self.queues = self.queues, []
            for sender, receiver, message in batch:
                targets = [receiver] if receiver is not None else list(self.cores)
                for target in targets:
                    if drop and drop(sender, target, message):
                        continue
                    self.cores[target].on_message(sender, message)

    def fire_timers(self, replica):
        pending, self.timers[replica] = self.timers[replica], []
        for handle in pending:
            if not handle["cancelled"]:
                handle["callback"]()


def test_pbft_normal_case_decides_the_batch_everywhere():
    harness = PbftHarness(batches=[(b"t1", b"t2")])
    for core in harness.cores.values():
        core.start()
    harness.deliver_all()
    for replica, decisions in harness.decisions.items():
        assert decisions == [(0, 0, (b"t1", b"t2"))]


def test_pbft_out_of_order_processing_runs_slots_concurrently():
    harness = PbftHarness(batches=[(b"a",), (b"b",), (b"c",)])
    primary = harness.cores[0]
    primary.start()
    # Before any Prepare/Commit exchange the primary has already pre-proposed
    # all three batches (window is 4).
    assert primary.preprepares_sent == 3
    harness.deliver_all()
    assert [seq for seq, _, _ in sorted(harness.decisions[1])] == [0, 1, 2]


def test_pbft_requires_quorum_before_deciding():
    harness = PbftHarness(batches=[(b"a",)])
    harness.cores[0].start()

    def drop_commits_to_replica_3(sender, receiver, message):
        return isinstance(message, (PrepareMessage, CommitMessage)) and receiver == 3 and sender != 3

    harness.deliver_all(drop=drop_commits_to_replica_3)
    # Replica 3 saw the PrePrepare but not enough Prepare/Commit messages.
    assert harness.decisions[0] and harness.decisions[1]
    assert harness.decisions[3] == []


def test_pbft_ignores_equivocating_second_preprepare():
    harness = PbftHarness(batches=[(b"a",)])
    backup = harness.cores[1]
    backup.on_preprepare(0, PrePrepareMessage(instance=0, view=0, sequence=0, transaction_digests=(b"x",)))
    backup.on_preprepare(0, PrePrepareMessage(instance=0, view=0, sequence=0, transaction_digests=(b"y",)))
    slot = backup.slots[0]
    assert slot.digests == (b"x",)


def test_pbft_rejects_preprepare_from_non_primary():
    harness = PbftHarness()
    backup = harness.cores[1]
    backup.on_preprepare(2, PrePrepareMessage(instance=0, view=0, sequence=0, transaction_digests=(b"x",)))
    assert 0 not in backup.slots or backup.slots[0].digests is None


def test_pbft_view_change_replaces_silent_primary():
    harness = PbftHarness(batches=[(b"a",)])
    # Do not start the primary (replica 0); backups arm their progress timers.
    for replica in (1, 2, 3):
        harness.cores[replica].arm_progress_timer()
        harness.fire_timers(replica)
    harness.deliver_all()
    # Replica 1 is the primary of view 1 and should have announced NewView.
    assert all(harness.cores[r].view == 1 for r in (1, 2, 3))
    assert harness.cores[1].is_primary()


def test_pbft_view_change_reproposes_prepared_slots():
    harness = PbftHarness(batches=[(b"a",)])
    harness.cores[0].start()

    # Let the slot prepare everywhere but drop all Commit messages so nothing decides.
    def drop_commits(sender, receiver, message):
        return isinstance(message, CommitMessage)

    harness.deliver_all(drop=drop_commits)
    assert all(not decisions for decisions in harness.decisions.values())
    # Now force a view change; the prepared slot must be re-proposed and decided.
    for replica in (1, 2, 3):
        harness.cores[replica].request_view_change(1)
    harness.deliver_all()
    for replica in (1, 2, 3):
        assert any(seq == 0 and digests == (b"a",) for seq, _view, digests in harness.decisions[replica])


def test_pbft_equivocating_votes_do_not_count_toward_honest_quorum():
    """Regression: Prepare/Commit votes arriving before the PrePrepare were
    recorded without the digest they voted for, so an A3-rewritten phantom
    vote could be credited toward the honest batch's quorum."""
    harness = PbftHarness()
    victim = harness.cores[1]
    phantom = PrepareMessage(instance=0, view=0, sequence=0, batch_digest=b"phantom")
    victim.on_prepare(3, phantom)  # equivocating vote lands first
    preprepare = PrePrepareMessage(
        instance=0, view=0, sequence=0, transaction_digests=(b"a",)
    )
    victim.on_preprepare(0, preprepare)
    honest = PrepareMessage(
        instance=0, view=0, sequence=0, batch_digest=preprepare.batch_digest()
    )
    victim.on_prepare(2, honest)
    # Two matching votes (primary + replica 2): one short of the quorum of 3;
    # the phantom vote from replica 3 must not close the gap.
    assert not victim.slots[0].prepared
    victim.on_prepare(3, honest)  # the attacker's honest-side vote does count
    assert victim.slots[0].prepared


def test_pbft_view_change_vote_carries_unprepared_content():
    """A slot whose content was received but never re-prepared (e.g. reset by
    a prior NewView) must still travel in the ViewChange vote — forgetting it
    between two rapid view changes could let a committed slot be no-op
    filled."""
    harness = PbftHarness()
    backup = harness.cores[1]
    preprepare = PrePrepareMessage(
        instance=0, view=0, sequence=0, transaction_digests=(b"a",)
    )
    backup.on_preprepare(0, preprepare)
    assert not backup.slots[0].prepared
    harness.queues.clear()
    backup.request_view_change(1)
    votes = [m for _s, _r, m in harness.queues if isinstance(m, ViewChangeMessage)]
    assert votes and votes[0].prepared_slots == ((0, 0, (b"a",)),)


def test_pbft_view_change_backfills_replica_that_missed_decisions():
    """Regression: view-change votes used to carry only slots above the
    voter's decided frontier, so a slot committed everywhere except on a
    replica that was isolated arrived at that replica as neither a
    re-proposal nor a no-op — it could assemble quorums for nothing and its
    execution frontier wedged forever."""
    harness = PbftHarness(batches=[(b"a",), (b"b",)])
    harness.cores[0].start()

    def isolate_replica_3(sender, receiver, message):
        return sender == 3 or receiver == 3

    harness.deliver_all(drop=isolate_replica_3)
    assert [seq for seq, _, _ in sorted(harness.decisions[0])] == [0, 1]
    assert harness.decisions[3] == []
    # Replica 3 heals; a view change must hand it the decided slots' content.
    for replica in (0, 1, 2, 3):
        harness.cores[replica].request_view_change(1)
    harness.deliver_all()
    assert [seq for seq, _, _ in sorted(harness.decisions[3])] == [0, 1]
    for sequence, reference in ((0, (b"a",)), (1, (b"b",))):
        decided = [d for s, _v, d in harness.decisions[3] if s == sequence]
        assert decided == [reference]


# ---------------------------------------------------------------------------
# protocol cluster integrations (message-level simulator)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", ["pbft", "hotstuff", "narwhal-hs"])
def test_baseline_cluster_liveness_and_consistency(protocol):
    cluster = SimulatedCluster.for_protocol(protocol, num_replicas=4, clients=3, outstanding_per_client=4, batch_size=5)
    result = cluster.run(duration=1.0)
    cluster.assert_no_divergence()
    assert result.confirmed_transactions > 5
    assert all(replica.ledger.verify_chain() for replica in cluster.replicas)


def test_rcc_cluster_liveness_and_consistency():
    cluster = SimulatedCluster.for_protocol("rcc", num_replicas=4, clients=3, outstanding_per_client=4, batch_size=5)
    result = cluster.run(duration=0.4)
    cluster.assert_no_divergence()
    assert result.confirmed_transactions > 5


def test_for_protocol_rejects_unknown_names():
    with pytest.raises(ValueError):
        SimulatedCluster.for_protocol("raft", num_replicas=4)


def test_rcc_routes_requests_to_instances_and_resolves_noops():
    cluster = SimulatedCluster.for_protocol("rcc", num_replicas=4, clients=2, outstanding_per_client=2, batch_size=5)
    cluster.run(duration=0.3)
    replica = cluster.replicas[0]
    assert replica.num_instances == 4
    # Idle instances filled rounds with reconstructible no-ops.
    assert replica.decided_batches > 0
    noop_digest_found = any(
        replica.resolve_noop(digest, position) is not None
        for position, digests in replica.pipeline.decided_items()[:50]
        for digest in digests
    )
    assert noop_digest_found


def test_rcc_complaints_trigger_backoff_penalty():
    cluster = SimulatedCluster.for_protocol("rcc", num_replicas=4, clients=1, outstanding_per_client=1, batch_size=5)
    cluster.start()
    cluster.simulator.run_for(0.2)
    replica = cluster.replicas[1]
    target_instance = 0
    view_before = replica.cores[target_instance].view
    for sender in (1, 2):
        replica._on_complaint(sender, ComplaintMessage(instance=target_instance, view=view_before))
    assert replica.backoff_penalty(target_instance) > 0


def test_hotstuff_three_chain_commit_and_leader_rotation():
    cluster = SimulatedCluster.for_protocol("hotstuff", num_replicas=4, clients=2, outstanding_per_client=3, batch_size=5)
    cluster.run(duration=1.0)
    replica = cluster.replicas[0]
    assert replica.committed_chain_height() > 3
    assert replica.view > 3
    # Committed chain nodes come from a rotation of leaders, not a single one.
    leader_views = {node.view % 4 for node in replica.nodes.values() if node.committed and node.view >= 0}
    assert len(leader_views) > 1


def test_hotstuff_quorum_cert_validation():
    qc = QuorumCert(view=3, node_digest=b"d", signers=(0, 1, 2))
    assert qc.is_valid(3)
    assert not qc.is_valid(4)
    duplicate_signers = QuorumCert(view=3, node_digest=b"d", signers=(0, 0, 0))
    assert not duplicate_signers.is_valid(2)


def test_hotstuff_chain_sync_drops_unsolicited_and_heals_stripped_justify():
    """A Byzantine peer cannot park justify-stripped copies of genuine nodes.

    The chain-node digest deliberately excludes the justify (it is
    recomputed from shipped content), so a QC-stripped copy of a genuine
    node hashes correctly.  It must not be accepted unsolicited, and a
    later validated QC for an already-recorded digest must upgrade the
    node — otherwise the stripped copy would suppress the three-chain
    commit rule forever.
    """
    from repro.protocols.hotstuff.messages import HsChainResponse, HsNodeData, HsProposal
    from repro.protocols.hotstuff.replica import chain_node_digest

    cluster = SimulatedCluster.for_protocol(
        "hotstuff", num_replicas=4, clients=1, outstanding_per_client=1, batch_size=5
    )
    replica = cluster.replicas[0]
    batch = (b"sync-batch",)
    digest = chain_node_digest(5, GENESIS_NODE_DIGEST, batch)
    stripped = HsNodeData(
        digest=digest,
        view=5,
        parent_digest=GENESIS_NODE_DIGEST,
        transaction_digests=batch,
        justify=None,
    )
    # Unsolicited response: dropped entirely.
    replica._on_chain_response(1, HsChainResponse(nodes=(stripped,)))
    assert digest not in replica.nodes
    # Solicited: recorded, but with a justify hole...
    replica._chain_requested[digest] = replica.view
    replica._on_chain_response(1, HsChainResponse(nodes=(stripped,)))
    assert replica.nodes[digest].justify is None
    # ...that a validated QC in a later segment heals...
    qc = QuorumCert(view=4, node_digest=GENESIS_NODE_DIGEST, signers=(0, 1, 2))
    full = HsNodeData(
        digest=digest,
        view=5,
        parent_digest=GENESIS_NODE_DIGEST,
        transaction_digests=batch,
        justify=qc,
    )
    replica._on_chain_response(2, HsChainResponse(nodes=(full,)))
    assert replica.nodes[digest].justify == qc
    # ...as does the genuine proposal for a stripped digest.
    child_digest = chain_node_digest(6, digest, batch)
    stripped_child = HsNodeData(
        digest=child_digest,
        view=6,
        parent_digest=digest,
        transaction_digests=batch,
        justify=None,
    )
    replica._chain_requested[child_digest] = replica.view
    replica._on_chain_response(1, HsChainResponse(nodes=(stripped_child,)))
    assert replica.nodes[child_digest].justify is None
    child_qc = QuorumCert(view=5, node_digest=digest, signers=(1, 2, 3))
    node = replica._record_node(
        HsProposal(
            view=6,
            node_digest=child_digest,
            parent_digest=digest,
            transaction_digests=batch,
            justify=child_qc,
        )
    )
    assert node.justify == child_qc


def test_narwhal_messages_are_heavier_and_charge_signatures():
    spotless_like = SimulatedCluster.for_protocol("hotstuff", num_replicas=4, clients=1, outstanding_per_client=1, batch_size=5)
    narwhal = SimulatedCluster.for_protocol("narwhal-hs", num_replicas=4, clients=1, outstanding_per_client=1, batch_size=5)
    spotless_like.run(duration=0.4)
    narwhal.run(duration=0.4)
    hs_replica = spotless_like.replicas[0]
    nw_replica = narwhal.replicas[0]
    from repro.protocols.hotstuff.messages import HsVote

    vote = HsVote(view=1, node_digest=b"d", voter=0)
    assert nw_replica._size_of(vote) > hs_replica._size_of(vote)
    assert nw_replica.signature_verifications > 0
