"""Unit tests for the checkpoint / state-transfer subsystem.

Covers the :class:`CheckpointManager` (certificate quorum, GC strictly below
the certified floor, refusal to GC or serve uncertified slots) and the
:class:`StateTransferEngine` (gap detection, verified replay, rejection of
uncertified and forged responses from a Byzantine peer), plus the PBFT
view-change bound the checkpoint floor buys: ViewChange votes carry O(K)
slots after 100+ commits, not the full since-genesis history.
"""

import pytest

from repro.recovery import (
    CheckpointCertificate,
    CheckpointManager,
    CheckpointVote,
    SlotEntry,
    SlotRecord,
    StateRequest,
    StateResponse,
    StateTransferEngine,
    fold_entry,
)


def make_entry(position, payload=None):
    digests = (f"txn-{position}".encode(),) if payload is None else payload
    return SlotEntry(
        position=position,
        records=(SlotRecord(view=position, instance=0, transaction_digests=tuple(digests)),),
    )


def make_manager(node_id=0, interval=4, num_replicas=4, quorum=3):
    return CheckpointManager(
        node_id=node_id, num_replicas=num_replicas, quorum=quorum, interval=interval
    )


def advance(manager, upto, start=None):
    """Execute entries [start, upto) on ``manager``; returns emitted votes."""
    votes = []
    for position in range(manager.frontier if start is None else start, upto):
        vote = manager.record_execution(make_entry(position))
        if vote is not None:
            votes.append(vote)
    return votes


# ---------------------------------------------------------------------------
# CheckpointManager
# ---------------------------------------------------------------------------


def test_votes_are_emitted_at_interval_crossings_only():
    manager = make_manager(interval=4)
    votes = advance(manager, 11)
    assert [vote.position for vote in votes] == [4, 8]
    assert all(vote.voter == 0 for vote in votes)
    assert manager.frontier == 11


def test_out_of_order_fold_is_rejected():
    manager = make_manager()
    advance(manager, 3)
    with pytest.raises(ValueError):
        manager.record_execution(make_entry(5))
    with pytest.raises(ValueError):
        manager.record_execution(make_entry(1))


def test_identical_prefixes_fold_to_identical_digests():
    first, second = make_manager(node_id=0), make_manager(node_id=1)
    advance(first, 9)
    advance(second, 9)
    assert first.rolling == second.rolling
    # Any divergence in content changes the digest.
    third = make_manager(node_id=2)
    advance(third, 8)
    third.record_execution(make_entry(8, payload=(b"different",)))
    assert third.rolling != first.rolling


def test_quorum_of_matching_votes_forms_a_stable_certificate():
    managers = [make_manager(node_id=i) for i in range(4)]
    votes = {i: advance(managers[i], 4)[0] for i in range(4)}
    collector = managers[0]
    assert collector.on_vote(0, votes[0]) is None  # 1 vote
    assert collector.on_vote(1, votes[1]) is None  # 2 votes: below 2f + 1
    certificate = collector.on_vote(2, votes[2])  # 3 votes: quorum
    assert certificate is not None
    assert certificate.position == 4
    assert certificate.signers == (0, 1, 2)
    assert certificate.digest == collector.rolling
    assert collector.stable_position() == 4


def test_votes_from_invalid_or_mismatched_senders_are_ignored():
    collector = make_manager(node_id=0)
    vote = CheckpointVote(position=4, digest=b"d", voter=1)
    assert collector.on_vote(2, vote) is None  # relayed vote: sender != voter
    outsider = CheckpointVote(position=4, digest=b"d", voter=9)
    assert collector.on_vote(9, outsider) is None  # not a replica id
    stale_free = collector.on_vote(1, vote)
    assert stale_free is None and collector.stable is None


def test_stale_votes_below_the_floor_are_dropped():
    managers = [make_manager(node_id=i) for i in range(4)]
    early = {i: advance(managers[i], 4)[0] for i in range(4)}
    late = {i: advance(managers[i], 8)[0] for i in range(4)}
    collector = managers[0]
    for i in range(3):
        collector.on_vote(i, late[i])
    assert collector.stable_position() == 8
    # A full quorum of stale votes must not roll the floor back.
    for i in range(4):
        assert collector.on_vote(i, early[i]) is None
    assert collector.stable_position() == 8


def test_interval_zero_disables_checkpointing():
    manager = make_manager(interval=0)
    assert advance(manager, 20) == []
    vote = CheckpointVote(position=4, digest=b"d", voter=1)
    assert manager.on_vote(1, vote) is None
    assert not manager.enabled


def test_serve_refuses_uncertified_content():
    manager = make_manager()
    advance(manager, 10)
    # Executed to 10 but nothing is certified: nothing may be served.
    assert manager.serve(0) is None
    for i in range(3):
        peer = make_manager(node_id=i)
        vote = advance(peer, 8)[-1]
        manager.on_vote(i, vote)
    assert manager.stable_position() == 8
    served = manager.serve(3)
    assert served is not None
    entries, certificate = served
    # Positions 8 and 9 are executed locally but uncertified: not served.
    assert [entry.position for entry in entries] == [3, 4, 5, 6, 7]
    assert certificate.position == 8


def test_pipeline_refuses_to_gc_beyond_the_executed_frontier():
    from repro.ledger.execution import ExecutionEngine
    from repro.ledger.kvtable import KeyValueTable
    from repro.ledger.ledger import Ledger
    from repro.runtime import ExecutionPipeline, Mempool
    from repro.workload.requests import Operation, Transaction

    pool = Mempool()
    pipeline = ExecutionPipeline(
        mempool=pool,
        engine=ExecutionEngine(table=KeyValueTable(), ledger=Ledger()),
        protocol_name="test",
        quorum=3,
    )
    for position in range(4):
        txn = Transaction(
            client_id=1, sequence=position, operations=(Operation.write(position, b"v"),)
        )
        pool.admit(txn)
        pipeline.deliver(position, (txn.digest(),))
    assert pipeline.next_execution_position == 4
    # GC below the frontier drops decided-slot state ...
    assert pipeline.compact_below(3) == 3
    assert pipeline.decided_positions() == [3]
    # ... but slots at or beyond the frontier are uncertified by definition
    # and must never be dropped.
    with pytest.raises(ValueError):
        pipeline.compact_below(9)
    assert pipeline.decided_positions() == [3]


# ---------------------------------------------------------------------------
# StateTransferEngine
# ---------------------------------------------------------------------------


class TransferHarness:
    """A laggard replica's manager + engine wired to recording callbacks."""

    def __init__(self, executed=3, interval=4):
        self.manager = make_manager(node_id=0, interval=interval)
        advance(self.manager, executed)
        self.requests = []
        self.applied = []
        self.engine = StateTransferEngine(
            self.manager,
            node_id=0,
            weak_quorum=2,
            send_request=lambda target, request: self.requests.append((target, request)),
            apply_entries=self._apply,
        )

    def _apply(self, entries, certificate):
        for entry in entries:
            self.applied.append(entry.position)
            self.manager.record_execution(entry)

    def install_cluster_checkpoint(self, upto=8):
        """Form a stable certificate from three up-to-date peers."""
        peers = [make_manager(node_id=i) for i in (1, 2, 3)]
        votes = {peer.node_id: advance(peer, upto)[-1] for peer in peers}
        certificate = None
        for collector in [self.manager] + peers:
            for node_id, vote in votes.items():
                formed = collector.on_vote(node_id, vote)
                if collector is self.manager and formed is not None:
                    certificate = formed
        self.reference = peers[0]
        return certificate


def test_gap_detection_requests_from_certificate_signers():
    harness = TransferHarness(executed=3)
    assert not harness.engine.maybe_request()  # no certificate yet: no gap known
    harness.install_cluster_checkpoint(upto=8)
    assert harness.engine.behind_by() == 5
    assert harness.engine.maybe_request()
    targets = [target for target, _ in harness.requests]
    assert targets == [1, 2]  # f + 1 signers, never ourselves
    assert all(request.from_position == 3 for _, request in harness.requests)
    # The same floor is not requested twice while the transfer is in flight.
    assert not harness.engine.maybe_request()


def test_verified_replay_advances_the_frontier():
    harness = TransferHarness(executed=3)
    harness.install_cluster_checkpoint(upto=8)
    entries, certificate = harness.reference.serve(3)
    response = StateResponse(
        from_position=3, entries=entries, certificate=certificate
    )
    assert harness.engine.on_response(1, response)
    assert harness.applied == [3, 4, 5, 6, 7]
    assert harness.manager.frontier == 8
    assert harness.manager.rolling == certificate.digest
    assert harness.engine.transfers_completed == 1
    # A late duplicate from the second signer is stale, not an error.
    assert not harness.engine.on_response(2, response)
    assert harness.engine.responses_rejected == 0


def test_forged_content_from_a_byzantine_peer_is_rejected():
    harness = TransferHarness(executed=3)
    harness.install_cluster_checkpoint(upto=8)
    entries, certificate = harness.reference.serve(3)
    forged = list(entries)
    forged[2] = make_entry(5, payload=(b"byzantine-batch",))
    response = StateResponse(
        from_position=3, entries=tuple(forged), certificate=certificate
    )
    assert not harness.engine.on_response(3, response)
    assert harness.engine.responses_rejected == 1
    assert harness.applied == []  # nothing was replayed
    assert harness.manager.frontier == 3


def test_uncertified_responses_are_rejected():
    harness = TransferHarness(executed=3)
    harness.install_cluster_checkpoint(upto=8)
    entries, certificate = harness.reference.serve(3)
    no_certificate = StateResponse(from_position=3, entries=entries, certificate=None)
    assert not harness.engine.on_response(1, no_certificate)
    thin = CheckpointCertificate(
        position=certificate.position, digest=certificate.digest, signers=(1, 1, 1)
    )
    below_quorum = StateResponse(from_position=3, entries=entries, certificate=thin)
    assert not harness.engine.on_response(1, below_quorum)
    forged_signers = CheckpointCertificate(
        position=certificate.position, digest=certificate.digest, signers=(7, 8, 9)
    )
    invalid_signers = StateResponse(
        from_position=3, entries=entries, certificate=forged_signers
    )
    assert not harness.engine.on_response(1, invalid_signers)
    assert harness.engine.responses_rejected == 3
    assert harness.manager.frontier == 3


def test_responses_with_holes_are_rejected():
    harness = TransferHarness(executed=3)
    harness.install_cluster_checkpoint(upto=8)
    entries, certificate = harness.reference.serve(3)
    holey = tuple(entry for entry in entries if entry.position != 5)
    response = StateResponse(from_position=3, entries=holey, certificate=certificate)
    assert not harness.engine.on_response(1, response)
    assert harness.engine.responses_rejected == 1


def test_replay_skips_entries_already_executed_locally():
    harness = TransferHarness(executed=3)
    harness.install_cluster_checkpoint(upto=8)
    entries, certificate = harness.reference.serve(0)
    # The responder answered an old request covering [0, 8); we executed 3.
    response = StateResponse(from_position=0, entries=entries, certificate=certificate)
    assert harness.engine.on_response(1, response)
    assert harness.applied == [3, 4, 5, 6, 7]
    assert harness.manager.frontier == 8


def test_partial_transfer_unlatches_and_rerequests_the_remaining_gap():
    harness = TransferHarness(executed=3)
    harness.install_cluster_checkpoint(upto=8)
    assert harness.engine.maybe_request()
    sent_before = len(harness.requests)
    # An honest responder whose own stable floor lags the adopted certificate
    # can only serve part of the gap: a certificate at 4, entries [3, 4).
    laggards = [make_manager(node_id=i) for i in (1, 2, 3)]
    votes = {peer.node_id: advance(peer, 4)[-1] for peer in laggards}
    for node_id, vote in votes.items():
        laggards[0].on_vote(node_id, vote)
    entries, certificate = laggards[0].serve(3)
    assert certificate.position == 4
    partial = StateResponse(from_position=3, entries=entries, certificate=certificate)
    assert harness.engine.on_response(1, partial)
    assert harness.manager.frontier == 4
    # The remaining gap to the stable floor at 8 is re-requested immediately
    # instead of latching out every retry for the already-requested floor.
    retried = harness.requests[sent_before:]
    assert retried and all(request.from_position == 4 for _, request in retried)
    assert not harness.engine.maybe_request()  # latched again while in flight


def test_stalled_transfer_round_retries_with_rotated_targets():
    harness = TransferHarness(executed=3)
    harness.install_cluster_checkpoint(upto=8)
    assert harness.engine.maybe_request()
    first_round = [target for target, _ in harness.requests]
    assert first_round == [1, 2]
    # No response arrived; the retry must not be latched out and must reach
    # a different signer subset than the round that stalled.
    assert harness.engine.retry_if_stalled()
    second_round = [target for target, _ in harness.requests[len(first_round):]]
    assert second_round == [2, 3]
    # Once caught up there is nothing left to retry.
    entries, certificate = harness.reference.serve(3)
    response = StateResponse(from_position=3, entries=entries, certificate=certificate)
    assert harness.engine.on_response(2, response)
    assert not harness.engine.retry_if_stalled()


def test_fold_entry_is_sensitive_to_every_component():
    base = fold_entry(b"rolling", make_entry(3))
    assert fold_entry(b"rolling", make_entry(4)) != base
    assert fold_entry(b"other", make_entry(3)) != base
    assert fold_entry(b"rolling", make_entry(3, payload=(b"x",))) != base


# ---------------------------------------------------------------------------
# PBFT view-change bound: O(K) with the checkpoint floor, O(history) without
# ---------------------------------------------------------------------------


def _run_pbft_cluster(checkpoint_interval):
    from repro.bench.cluster import SimulatedCluster

    cluster = SimulatedCluster.for_protocol(
        "pbft",
        num_replicas=4,
        batch_size=2,
        clients=3,
        outstanding_per_client=4,
        seed=11,
        checkpoint_interval=checkpoint_interval,
    )
    cluster.run(duration=0.4)
    return cluster


def _captured_view_change(core):
    from repro.protocols.pbft.messages import ViewChangeMessage

    captured = []
    core.env.broadcast = captured.append
    core.request_view_change(core.view + 1)
    return next(m for m in captured if isinstance(m, ViewChangeMessage))


def test_pbft_view_change_votes_are_bounded_by_the_checkpoint_interval():
    interval = 16
    cluster = _run_pbft_cluster(checkpoint_interval=interval)
    core = cluster.replicas[1].core
    committed = core.decided_frontier + 1
    assert committed > 100, "need 100+ committed slots for the bound to mean anything"
    vote = _captured_view_change(core)
    assert vote.checkpoint_floor > 0
    assert vote.checkpoint is not None and vote.checkpoint.has_quorum(core.quorum, 4)
    # The vote carries only slots above the stable floor: O(K) plus the
    # in-flight pipeline window — never the full committed history.
    bound = interval + core.config.pipeline_depth
    assert len(vote.prepared_slots) <= bound
    assert all(sequence >= vote.checkpoint_floor for sequence, _v, _d in vote.prepared_slots)
    # Slot state below the floor was garbage-collected with it.
    assert all(sequence >= vote.checkpoint_floor for sequence in core.slots)


def test_pbft_view_change_without_checkpoints_grows_with_history():
    cluster = _run_pbft_cluster(checkpoint_interval=0)
    core = cluster.replicas[1].core
    committed = core.decided_frontier + 1
    assert committed > 100
    vote = _captured_view_change(core)
    # The regression the checkpoint floor fixes: every since-genesis slot
    # travels with the vote.
    assert len(vote.prepared_slots) >= committed
    assert vote.checkpoint_floor == 0 and vote.checkpoint is None
