"""Tests for the liveness machinery fixed by the corpus bugs.

Two mechanism-level bugs wedged replicas permanently under A2-style
partial-withholding attacks:

* the PBFT/RCC progress timer was cancelled on *any* PrePrepare, so a
  drip-feeding primary reset the deadline forever and no view change armed;
* HotStuff/Narwhal chain sync asked only the peer that revealed a gap, with
  no retry — a withholding peer simply never answered.

These tests pin the replacement semantics: a progress deadline that only
commits can extend, and a chain-sync retry timer with rotated targets plus
a payload pull behind the committed frontier.
"""

import pytest

from repro.bench.cluster import SimulatedCluster
from repro.protocols.common import BftConfig
from repro.protocols.hotstuff.messages import HsChainRequest
from repro.protocols.hotstuff.replica import (
    GENESIS_NODE_DIGEST,
    ChainNode,
    chain_node_digest,
)
from repro.protocols.pbft.core import PbftEnvironment, PbftInstanceCore
from repro.protocols.pbft.messages import (
    CommitMessage,
    PrepareMessage,
    PrePrepareMessage,
    ViewChangeMessage,
)
from repro.workload.requests import Operation, Transaction


# ---------------------------------------------------------------------------
# PBFT/RCC progress-deadline semantics (single core, fake environment)
# ---------------------------------------------------------------------------


class CoreHarness:
    """One PBFT core with recorded sends and manually-fired timers."""

    def __init__(self, replica_id=1, instance_id=0, num_replicas=4, pending=1):
        self.sent = []  # (receiver | None, message); None means broadcast
        self.timers = []  # dicts: name, delay, callback, cancelled
        self.pending = pending
        self.core = PbftInstanceCore(
            instance_id=instance_id,
            config=BftConfig(num_replicas=num_replicas, pipeline_depth=4),
            environment=PbftEnvironment(
                replica_id=replica_id,
                broadcast=lambda m: self.sent.append((None, m)),
                send=lambda to, m: self.sent.append((to, m)),
                set_timer=self._set_timer,
                cancel_timer=lambda handle: handle.update(cancelled=True),
                next_batch=lambda instance: None,
                on_decide=lambda instance, seq, view, digests: None,
                pending_requests=lambda: self.pending,
            ),
        )
        self.core.start()

    def _set_timer(self, name, delay, callback):
        handle = {"name": name, "delay": delay, "callback": callback, "cancelled": False}
        self.timers.append(handle)
        return handle

    def live_progress_timers(self):
        return [t for t in self.timers if "progress" in t["name"] and not t["cancelled"]]

    def broadcast_view_changes(self):
        return [m for to, m in self.sent if to is None and isinstance(m, ViewChangeMessage)]


def test_drip_fed_preprepares_do_not_reset_the_progress_deadline():
    """A primary that keeps proposing but never commits must not be trusted.

    The old code cancelled the progress timer on every PrePrepare, so a
    drip-feeding primary (propose slot N, withhold the commit phase, repeat)
    reset the deadline forever.  The timer must survive the stream and fire.
    """
    h = CoreHarness(replica_id=1)
    h.core.arm_progress_timer()
    (armed,) = h.live_progress_timers()
    for sequence in range(3):
        h.core.on_preprepare(
            0, PrePrepareMessage(instance=0, view=0, sequence=sequence, transaction_digests=(b"x",))
        )
    # The original deadline is still live: receiving proposals is a commit
    # *obligation*, not commit *progress*.
    assert not armed["cancelled"]
    assert h.live_progress_timers() == [armed]
    armed["callback"]()
    assert h.core.progress_timeout_fires == 1
    assert h.broadcast_view_changes(), "deadline expiry must escalate to a view change"


def test_commit_with_outstanding_work_extends_the_deadline():
    """Real progress re-arms the deadline instead of firing or disarming."""
    h = CoreHarness(replica_id=1)
    h.core.arm_progress_timer()
    (armed,) = h.live_progress_timers()
    h.core.on_preprepare(
        0, PrePrepareMessage(instance=0, view=0, sequence=0, transaction_digests=(b"x",))
    )
    for sender in (0, 2, 3):
        h.core.on_prepare(
            sender, PrepareMessage(instance=0, view=0, sequence=0, batch_digest=h.core.slots[0].batch_digest)
        )
    for sender in (0, 2, 3):
        h.core.on_commit(
            sender, CommitMessage(instance=0, view=0, sequence=0, batch_digest=h.core.slots[0].batch_digest)
        )
    # Slot 0 committed; with requests still pending the deadline extends
    # against the new frontier rather than disarming.
    assert h.core.decided_frontier == 0
    assert h.core.progress_deadline_extensions == 1
    assert armed["cancelled"]
    assert len(h.live_progress_timers()) == 1
    assert not h.broadcast_view_changes()


def test_deadline_fire_with_drained_workload_is_a_noop():
    """No outstanding work at expiry: nothing to demand a view change for."""
    h = CoreHarness(replica_id=1, pending=0)
    h.core.arm_progress_timer()
    (armed,) = h.live_progress_timers()
    armed["callback"]()
    assert h.core.progress_timeout_fires == 0
    assert not h.broadcast_view_changes()


def test_progress_timer_label_carries_the_adopted_view():
    """Adoption paths re-arm, so the label's view never goes stale."""
    h = CoreHarness(replica_id=2)
    h.core.arm_progress_timer()
    assert h.live_progress_timers()[0]["name"] == "pbft-0-progress-0"
    # f + 1 distinct senders operating in view 1 trigger adoption.
    for sender in (1, 3):
        h.core.on_message(
            sender, PrepareMessage(instance=0, view=1, sequence=0, batch_digest=b"d")
        )
    assert h.core.view == 1
    live = h.live_progress_timers()
    assert live, "adoption with outstanding work must re-arm the deadline"
    assert live[-1]["name"] == "pbft-0-progress-1"


def test_rcc_cores_share_the_progress_deadline_semantics():
    """RCC wires the same core per instance; instance 1's backup fires too."""
    h = CoreHarness(replica_id=0, instance_id=1)  # primary of instance 1 is replica 1
    h.core.arm_progress_timer()
    (armed,) = h.live_progress_timers()
    for sequence in range(2):
        h.core.on_preprepare(
            1, PrePrepareMessage(instance=1, view=0, sequence=sequence, transaction_digests=(b"x",))
        )
    assert not armed["cancelled"]
    armed["callback"]()
    assert h.core.progress_timeout_fires == 1
    assert any(m.instance == 1 for m in h.broadcast_view_changes())


# ---------------------------------------------------------------------------
# HotStuff/Narwhal chain-sync retry, rotation, and payload pull
# ---------------------------------------------------------------------------


class QuietCluster:
    """Four bare replicas on a live network, with no clients and no start().

    The real cluster factory schedules the whole closed-loop workload, which
    would swamp hand-crafted chain state; these tests need replicas that
    only move when the test injects something.
    """

    def __init__(self, protocol):
        from repro.protocols.hotstuff.replica import HotStuffReplica
        from repro.protocols.narwhal.replica import NarwhalHsReplica
        from repro.sim.engine import Simulator
        from repro.sim.network import Network
        from repro.sim.rng import DeterministicRng

        self.simulator = Simulator()
        network = Network(self.simulator, rng=DeterministicRng(7))
        cls = {"hotstuff": HotStuffReplica, "narwhal-hs": NarwhalHsReplica}[protocol]
        config = BftConfig(num_replicas=4)
        self.replicas = [
            cls(node_id=i, config=config, simulator=self.simulator, network=network)
            for i in range(4)
        ]


def _quiet_cluster(protocol):
    return QuietCluster(protocol)


@pytest.mark.parametrize("protocol", ["hotstuff", "narwhal-hs"])
def test_chain_sync_retries_with_a_rotated_target(protocol):
    """Sync succeeds although the first responder never answers.

    Replica 1 (the original revealer) does not have the requested node, so
    it serves nothing — exactly the behaviour of an A2 attacker that
    withheld the proposal.  The retry timer must re-request from the next
    peer in rotation, which does have it.
    """
    cluster = _quiet_cluster(protocol)
    requester, silent, helper = cluster.replicas[0], cluster.replicas[1], cluster.replicas[2]
    # Park the requester in a view it does not lead: sync completion would
    # otherwise (correctly) trigger a proposal and spin up consensus, which
    # this surgical test does not want running underneath it.
    requester.view = 1
    digest = chain_node_digest(5, GENESIS_NODE_DIGEST, ())
    helper.nodes[digest] = ChainNode(
        digest=digest,
        view=5,
        parent_digest=GENESIS_NODE_DIGEST,
        transaction_digests=(),
        justify=None,
        height=1,
    )
    requester._request_chain(silent.node_id, digest)
    assert requester.chain_syncs_requested == 1
    assert digest not in requester.nodes
    # Let the retry deadline expire and the rotated round-trip complete.
    cluster.simulator.run_for(requester.config.request_timeout * 3)
    assert requester.chain_sync_retries >= 1
    assert requester.chain_sync_rotations >= 1
    assert silent.chain_syncs_served == 0
    assert helper.chain_syncs_served >= 1, "the retry must rotate to the next peer"
    assert digest in requester.nodes, "rotation must reach a peer that has the node"
    assert digest not in requester._outstanding_syncs


@pytest.mark.parametrize("protocol", ["hotstuff", "narwhal-hs"])
def test_straggler_pulls_missing_payloads_behind_the_committed_frontier(protocol):
    """A committed position with a locally-missing payload self-heals.

    A replica that missed the client broadcasts while partitioned can
    commit positions it cannot execute; consensus-level sync cannot help
    because chain nodes only carry digests.  The payload pull must fetch
    the bodies and unblock execution.
    """
    cluster = _quiet_cluster(protocol)
    straggler, server = cluster.replicas[0], cluster.replicas[1]
    straggler.view = 2  # not a view the straggler leads (see rotation test)
    tx = Transaction(client_id=9, sequence=0, operations=(Operation.write(1, b"v"),))
    node_digest = chain_node_digest(1, GENESIS_NODE_DIGEST, (tx.digest(),))
    for replica, committed in ((straggler, False), (server, True)):
        replica.nodes[node_digest] = ChainNode(
            digest=node_digest,
            view=1,
            parent_digest=GENESIS_NODE_DIGEST,
            transaction_digests=(tx.digest(),),
            justify=None,
            height=1,
            committed=committed,
        )
    server.mempool.register_payload(tx)
    server._position_digests.append(node_digest)
    straggler._commit_chain(straggler.nodes[node_digest])
    # Committed but unexecutable: the payload pull went out eagerly.
    assert straggler._payload_stalled()
    assert straggler.payload_pulls == 1
    cluster.simulator.run_for(straggler.config.request_timeout * 3)
    assert not straggler._payload_stalled()
    assert straggler.pipeline.next_execution_position == 1
    assert straggler.executed_transactions == 1


@pytest.mark.parametrize("protocol", ["hotstuff", "narwhal-hs"])
def test_unsolicited_chain_payloads_are_not_registered(protocol):
    """A forged payload not referenced by a verified node never lands."""
    cluster = _quiet_cluster(protocol)
    victim, attacker = cluster.replicas[0], cluster.replicas[3]
    forged = Transaction(client_id=66, sequence=0, operations=(Operation.write(5, b"evil"),))
    from repro.protocols.hotstuff.messages import HsChainResponse, HsNodeData

    bogus = HsNodeData(
        digest=b"not-the-content-hash",
        view=2,
        parent_digest=GENESIS_NODE_DIGEST,
        transaction_digests=(forged.digest(),),
    )
    victim._chain_requested[b"not-the-content-hash"] = victim.view
    victim._on_chain_response(attacker.node_id, HsChainResponse(nodes=(bogus,), payloads=(forged,)))
    assert forged.digest() not in victim.mempool
