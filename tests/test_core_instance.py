"""Unit tests for a single SpotLess chained consensus instance.

The tests drive a small group of :class:`SpotLessInstance` state machines
through a manual harness (no simulator, no network): broadcasts are queued
and delivered explicitly, and timers fire only when the test says so.  This
exercises the normal-case protocol, the acceptance rules, Ask-recovery and
Rapid View Synchronization in isolation.
"""

from typing import Dict, List, Optional, Tuple

import pytest

from repro.core.chain import ProposalStatus
from repro.core.config import SpotLessConfig
from repro.core.instance import InstanceEnvironment, SpotLessInstance, ViewState
from repro.core.messages import AskMessage, ProposalForward, ProposeMessage, SyncMessage


class ManualTimer:
    """Timer handle recorded by the harness; fired explicitly by tests."""

    def __init__(self, name, delay, callback):
        self.name = name
        self.delay = delay
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def fire(self):
        if not self.cancelled:
            self.callback()


class Harness:
    """Connects a group of SpotLess instances through manual message queues."""

    def __init__(self, num_replicas=4, instance_id=0, **config_kwargs):
        self.config = SpotLessConfig(num_replicas=num_replicas, num_instances=1, **config_kwargs)
        self.queues: List[Tuple[int, Optional[int], object]] = []
        self.commits: Dict[int, List] = {r: [] for r in range(num_replicas)}
        self.batches: Dict[int, List[Tuple[bytes, ...]]] = {r: [] for r in range(num_replicas)}
        self.timers: Dict[int, List[ManualTimer]] = {r: [] for r in range(num_replicas)}
        self.time = 0.0
        self.instances: Dict[int, SpotLessInstance] = {}
        for replica in range(num_replicas):
            self.instances[replica] = SpotLessInstance(
                instance_id=instance_id,
                config=self.config,
                environment=self._environment(replica),
            )

    def _environment(self, replica):
        def next_batch(instance, view):
            queued = self.batches[replica]
            if queued:
                return queued.pop(0)
            return (bytes([replica]) + view.to_bytes(4, "big"),)

        def set_timer(name, delay, callback):
            timer = ManualTimer(name, delay, callback)
            self.timers[replica].append(timer)
            return timer

        return InstanceEnvironment(
            replica_id=replica,
            broadcast=lambda message, _r=replica: self.queues.append((_r, None, message)),
            send=lambda receiver, message, _r=replica: self.queues.append((_r, receiver, message)),
            set_timer=set_timer,
            cancel_timer=lambda handle: handle.cancel(),
            next_batch=next_batch,
            on_commit=lambda instance, proposal, _r=replica: self.commits[_r].append(proposal),
            now=lambda: self.time,
        )

    # -- delivery --------------------------------------------------------

    def _dispatch(self, sender, receiver, message):
        instance = self.instances[receiver]
        if isinstance(message, ProposeMessage):
            instance.on_propose(sender, message)
        elif isinstance(message, SyncMessage):
            instance.on_sync(sender, message)
        elif isinstance(message, AskMessage):
            instance.on_ask(sender, message)
        elif isinstance(message, ProposalForward):
            instance.on_forward(sender, message)

    def deliver_all(self, drop=None, max_rounds=200):
        """Deliver queued messages until quiescent.

        ``drop(sender, receiver, message)`` may return True to drop a message
        (used to simulate unreliable links and Byzantine withholding).
        """
        rounds = 0
        while self.queues and rounds < max_rounds:
            rounds += 1
            batch, self.queues = self.queues, []
            for sender, receiver, message in batch:
                receivers = [receiver] if receiver is not None else list(self.instances)
                for target in receivers:
                    if drop is not None and drop(sender, target, message):
                        continue
                    self._dispatch(sender, target, message)

    def start(self, replicas=None):
        for replica in replicas if replicas is not None else list(self.instances):
            self.instances[replica].start()

    def fire_timers(self, replica=None):
        """Fire every armed (non-cancelled) timer once."""
        replicas = [replica] if replica is not None else list(self.instances)
        for target in replicas:
            pending, self.timers[target] = self.timers[target], []
            for timer in pending:
                timer.fire()


# ---------------------------------------------------------------------------
# normal case
# ---------------------------------------------------------------------------


def test_primary_of_view_rotates_per_instance():
    config = SpotLessConfig(num_replicas=4)
    assert config.primary_of(0, 0) == 0
    assert config.primary_of(0, 1) == 1
    assert config.primary_of(3, 1) == 0
    assert config.primary_of(2, 6) == 0


def test_view_zero_proposal_is_accepted_and_conditionally_prepared():
    harness = Harness()
    harness.start()
    harness.deliver_all()
    for instance in harness.instances.values():
        proposal = instance.store.conditionally_prepared_in_view(0)
        assert proposal is not None
        assert proposal.status >= ProposalStatus.CONDITIONALLY_PREPARED
        assert instance.current_view >= 1


def test_three_views_commit_the_first_proposal_everywhere():
    harness = Harness()
    harness.start()
    for _ in range(6):
        harness.deliver_all()
    for replica, commits in harness.commits.items():
        assert commits, f"replica {replica} committed nothing"
        assert commits[0].view == 0
    digests = {commits[0].digest for commits in harness.commits.values()}
    assert len(digests) == 1


def test_committed_chains_are_consistent_across_replicas():
    harness = Harness()
    harness.start()
    for _ in range(12):
        harness.deliver_all()
    sequences = [
        [proposal.digest for proposal in harness.commits[replica]] for replica in harness.instances
    ]
    shortest = min(len(seq) for seq in sequences)
    assert shortest >= 2
    for sequence in sequences:
        assert sequence[:shortest] == sequences[0][:shortest]


def test_views_advance_without_timeouts_in_failure_free_runs():
    harness = Harness()
    harness.start()
    for _ in range(8):
        harness.deliver_all()
    assert all(instance.timeouts == 0 for instance in harness.instances.values())
    assert all(instance.current_view >= 3 for instance in harness.instances.values())


def test_sync_message_carries_cp_set_at_or_above_lock():
    harness = Harness()
    harness.start()
    for _ in range(6):
        harness.deliver_all()
    instance = harness.instances[0]
    cp_entries = instance.store.cp_set()
    assert cp_entries
    assert all(entry.view >= instance.store.lock.view for entry in cp_entries)


def test_duplicate_sync_messages_do_not_double_count():
    from repro.core.messages import Claim

    harness = Harness()
    harness.start()
    harness.deliver_all()
    instance = harness.instances[0]
    senders_before = instance.sync_senders(0)
    # Replay a stale failure-claim Sync for view 0 from a sender already counted.
    replay = SyncMessage(instance=0, view=0, claim=Claim.failure(0))
    instance.on_sync(senders_before[0], replay)
    assert instance.sync_senders(0) == senders_before


# ---------------------------------------------------------------------------
# failure handling: silent primary, echo rule, Ask-recovery, view skip
# ---------------------------------------------------------------------------


def test_silent_primary_leads_to_failure_claims_and_view_advance():
    harness = Harness()
    # Replica 0 is the primary of view 0; do not start it.
    harness.start(replicas=[1, 2, 3])
    harness.deliver_all()
    # Backups are still waiting in Recording; fire their t_R timers.
    harness.fire_timers()
    harness.deliver_all()
    harness.fire_timers()
    harness.deliver_all()
    for replica in (1, 2, 3):
        instance = harness.instances[replica]
        assert instance.current_view >= 1
        assert instance.timeouts >= 1


def test_progress_resumes_after_faulty_view():
    harness = Harness()
    harness.start(replicas=[1, 2, 3])
    for _ in range(3):
        harness.fire_timers()
        harness.deliver_all()
    # View 1's primary is replica 1, which is alive: the chain should extend
    # from genesis and eventually commit once three consecutive good views pass.
    for _ in range(10):
        harness.deliver_all()
        harness.fire_timers()
        harness.deliver_all()
    alive_commits = [harness.commits[replica] for replica in (1, 2, 3)]
    assert any(commits for commits in alive_commits)


def test_echo_rule_and_ask_recovery_fetch_missing_proposal():
    harness = Harness()
    harness.start(replicas=[0, 1, 2])
    # Drop the primary's proposal towards replica 3 only (attack A2 victim).
    harness.instances[3].start()

    def drop(sender, receiver, message):
        return isinstance(message, ProposeMessage) and receiver == 3

    harness.deliver_all(drop=drop)
    harness.deliver_all(drop=drop)
    victim = harness.instances[3]
    proposal = victim.store.conditionally_prepared_in_view(0)
    assert proposal is not None
    # The victim learned the proposal through f+1 Sync messages and recovered
    # the payload through Ask (or it will have asked for it).
    assert victim.asks_sent >= 1 or proposal.has_payload()


def test_ask_messages_answered_with_proposal_forward():
    harness = Harness()
    harness.start()
    harness.deliver_all()
    source = harness.instances[0]
    proposal = source.store.conditionally_prepared_in_view(0)
    # Direct query: replica 0 should reply to an Ask for its recorded proposal.
    source.on_ask(2, AskMessage(instance=0, view=0, claim=make_claim(proposal)))
    forwarded = [msg for sender, receiver, msg in harness.queues if isinstance(msg, ProposalForward)]
    assert forwarded and forwarded[-1].propose.view == 0


def make_claim(proposal):
    from repro.core.messages import Claim

    return Claim(view=proposal.view, digest=proposal.digest)


def test_rapid_view_synchronization_skips_to_higher_view():
    harness = Harness()
    harness.start()
    lagging = harness.instances[3]
    current = lagging.current_view
    higher = current + 5
    # f + 1 = 2 replicas report Sync messages from a much higher view.
    from repro.core.messages import Claim

    for sender in (0, 1):
        lagging.on_sync(sender, SyncMessage(instance=0, view=higher, claim=Claim.failure(higher)))
    assert lagging.current_view == higher
    assert lagging.view_skips >= 1


def test_single_higher_view_report_does_not_skip():
    harness = Harness()
    harness.start()
    lagging = harness.instances[3]
    from repro.core.messages import Claim

    lagging.on_sync(0, SyncMessage(instance=0, view=50, claim=Claim.failure(50)))
    assert lagging.current_view < 50


def test_retransmit_flag_triggers_resend_of_own_sync():
    harness = Harness()
    harness.start()
    harness.deliver_all()
    replica0 = harness.instances[0]
    harness.queues.clear()
    from repro.core.messages import Claim

    request = SyncMessage(instance=0, view=0, claim=Claim.failure(0), retransmit_flag=True)
    replica0.on_sync(3, request)
    directed = [(s, r, m) for s, r, m in harness.queues if r == 3 and isinstance(m, SyncMessage)]
    assert directed, "replica 0 should retransmit its view-0 Sync to the requester"


def test_proposal_from_wrong_primary_is_ignored():
    harness = Harness()
    harness.start()
    harness.deliver_all()
    instance = harness.instances[2]
    view = instance.current_view
    wrong_sender = (instance.primary_of_view(view) + 1) % 4
    bogus = ProposeMessage(
        instance=0,
        view=view,
        transaction_digests=(b"evil",),
        parent_digest=instance.store.lock.digest,
        parent_view=instance.store.lock.view,
    )
    synced_before = view in instance._synced_views
    instance.on_propose(wrong_sender, bogus)
    if not synced_before:
        assert view not in instance._synced_views


def test_instance_ignores_messages_for_other_instances():
    harness = Harness()
    harness.start()
    instance = harness.instances[0]
    views_before = instance.views_entered
    from repro.core.messages import Claim

    instance.on_sync(1, SyncMessage(instance=7, view=3, claim=Claim.failure(3)))
    instance.on_propose(
        1,
        ProposeMessage(
            instance=7,
            view=0,
            transaction_digests=(),
            parent_digest=instance.store.lock.digest,
            parent_view=-1,
        ),
    )
    assert instance.views_entered == views_before


def test_adaptive_timers_expose_current_intervals():
    harness = Harness()
    harness.start()
    instance = harness.instances[0]
    assert instance.recording_timeout_interval() > 0
    assert instance.certifying_timeout_interval() > 0
