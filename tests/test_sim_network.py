"""Unit tests for the simulated network, CPU model, actors and metrics."""

import pytest

from repro.sim.actor import Actor
from repro.sim.cpu import CpuModel, CpuTask
from repro.sim.engine import Simulator
from repro.sim.metrics import Histogram, MetricsRegistry, TimeSeries
from repro.sim.network import Network, NetworkConfig, Partition, RegionTopology
from repro.sim.rng import DeterministicRng, zipf_cdf


class Recorder(Actor):
    """Test actor that records everything delivered to it."""

    def __init__(self, node_id, simulator, network):
        super().__init__(node_id, simulator, network)
        self.received = []

    def on_message(self, sender, payload):
        self.received.append((sender, payload, self.now))


def make_pair(config=None):
    sim = Simulator()
    network = Network(sim, config or NetworkConfig(jitter=0.0))
    a = Recorder(0, sim, network)
    b = Recorder(1, sim, network)
    return sim, network, a, b


def test_message_delivered_after_link_delay():
    sim, network, a, b = make_pair(NetworkConfig(base_delay=0.01, jitter=0.0, bandwidth_bytes_per_sec=1e12))
    a.send(1, "hello", 100)
    sim.run()
    assert len(b.received) == 1
    sender, payload, time = b.received[0]
    assert sender == 0 and payload == "hello"
    assert time == pytest.approx(0.01, rel=1e-6)


def test_nic_bandwidth_serialises_consecutive_sends():
    config = NetworkConfig(base_delay=0.0, jitter=0.0, bandwidth_bytes_per_sec=1000.0)
    sim, network, a, b = make_pair(config)
    a.send(1, "first", 500)
    a.send(1, "second", 500)
    sim.run()
    times = [time for _, _, time in b.received]
    assert times[0] == pytest.approx(0.5, rel=1e-6)
    assert times[1] == pytest.approx(1.0, rel=1e-6)


def test_broadcast_reaches_all_receivers():
    sim = Simulator()
    network = Network(sim, NetworkConfig(jitter=0.0))
    actors = [Recorder(i, sim, network) for i in range(4)]
    sent = actors[0].broadcast([1, 2, 3], "ping", 64)
    sim.run()
    assert sent == 3
    assert all(len(actor.received) == 1 for actor in actors[1:])


def test_down_node_neither_sends_nor_receives():
    sim, network, a, b = make_pair()
    network.set_node_down(1)
    assert a.send(1, "x", 10) is False or True  # drop decided at send or delivery
    sim.run()
    assert b.received == []
    network.set_node_down(1, False)
    a.send(1, "y", 10)
    sim.run()
    assert [payload for _, payload, _ in b.received] == ["y"]


def test_partition_blocks_cross_group_traffic():
    sim = Simulator()
    network = Network(sim, NetworkConfig(jitter=0.0))
    actors = [Recorder(i, sim, network) for i in range(4)]
    network.set_partition(Partition(groups=(frozenset({0, 1}), frozenset({2, 3}))))
    actors[0].send(1, "same-side", 10)
    actors[0].send(2, "cross", 10)
    sim.run()
    assert [p for _, p, _ in actors[1].received] == ["same-side"]
    assert actors[2].received == []
    network.set_partition(None)
    actors[0].send(2, "healed", 10)
    sim.run()
    assert [p for _, p, _ in actors[2].received] == ["healed"]


def test_loss_rate_drops_roughly_the_right_fraction():
    config = NetworkConfig(base_delay=0.0001, jitter=0.0, loss_rate=0.5)
    sim = Simulator()
    network = Network(sim, config, rng=DeterministicRng(3))
    a = Recorder(0, sim, network)
    b = Recorder(1, sim, network)
    for _ in range(400):
        a.send(1, "m", 10)
    sim.run()
    assert 100 < len(b.received) < 300


def test_drop_rule_filters_specific_messages():
    sim, network, a, b = make_pair()
    network.add_drop_rule(lambda sender, receiver, payload: payload == "bad")
    a.send(1, "bad", 10)
    a.send(1, "good", 10)
    sim.run()
    assert [p for _, p, _ in b.received] == ["good"]
    network.clear_drop_rules()
    a.send(1, "bad", 10)
    sim.run()
    assert [p for _, p, _ in b.received] == ["good", "bad"]


def test_region_topology_gives_higher_cross_region_delay():
    topology = RegionTopology(regions=2, intra_delay=0.001, inter_delay=0.05, jitter_fraction=0.0)
    assert topology.link(0, 2).delay == 0.001  # same region (0 and 2 are both region 0)
    assert topology.link(0, 1).delay == 0.05


def test_duplicate_registration_rejected():
    sim = Simulator()
    network = Network(sim, NetworkConfig())
    Recorder(0, sim, network)
    with pytest.raises(ValueError):
        Recorder(0, sim, network)


def test_network_metrics_count_sent_and_delivered():
    sim, network, a, b = make_pair()
    a.send(1, "x", 100)
    sim.run()
    assert network.metrics.counter("network.messages_sent").value == 1
    assert network.metrics.counter("network.messages_delivered").value == 1
    assert network.metrics.counter("network.bytes_sent").value == 100


# ---------------------------------------------------------------------------
# timers and actors
# ---------------------------------------------------------------------------


def test_actor_timer_fires_and_can_be_cancelled():
    sim = Simulator()
    network = Network(sim, NetworkConfig())
    actor = Recorder(0, sim, network)
    fired = []
    timer = actor.timer("t", lambda: fired.append(actor.now))
    timer.start(0.5)
    sim.run()
    assert fired == [0.5]
    timer.start(0.5)
    timer.cancel()
    sim.run()
    assert fired == [0.5]


def test_actor_timer_restart_replaces_previous_deadline():
    sim = Simulator()
    network = Network(sim, NetworkConfig())
    actor = Recorder(0, sim, network)
    fired = []
    timer = actor.timer("t", lambda: fired.append(actor.now))
    timer.start(1.0)
    sim.run(until=0.5)
    timer.start(1.0)
    sim.run()
    assert fired == [1.5]


# ---------------------------------------------------------------------------
# CPU model
# ---------------------------------------------------------------------------


def test_cpu_single_core_serialises_tasks():
    sim = Simulator()
    cpu = CpuModel(sim, cores=1)
    first = cpu.execute(CpuTask("a", 1.0))
    second = cpu.execute(CpuTask("b", 1.0))
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(2.0)


def test_cpu_multiple_cores_run_in_parallel():
    sim = Simulator()
    cpu = CpuModel(sim, cores=2)
    first = cpu.execute(CpuTask("a", 1.0))
    second = cpu.execute(CpuTask("b", 1.0))
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(1.0)


def test_cpu_callback_fires_at_completion_time():
    sim = Simulator()
    cpu = CpuModel(sim, cores=1)
    done = []
    cpu.execute(CpuTask("a", 0.25), callback=lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.25)]


def test_cpu_utilization_accounts_for_busy_time():
    sim = Simulator()
    cpu = CpuModel(sim, cores=2)
    cpu.execute(CpuTask("a", 1.0))
    assert cpu.utilization(elapsed=1.0) == pytest.approx(0.5)


def test_cpu_requires_at_least_one_core():
    with pytest.raises(ValueError):
        CpuModel(Simulator(), cores=0)


# ---------------------------------------------------------------------------
# metrics and RNG
# ---------------------------------------------------------------------------


def test_histogram_statistics():
    histogram = Histogram("lat")
    for value in [1.0, 2.0, 3.0, 4.0]:
        histogram.observe(value)
    assert histogram.mean() == pytest.approx(2.5)
    assert histogram.percentile(0.5) == 2.0
    assert histogram.maximum() == 4.0
    assert histogram.minimum() == 1.0
    histogram.reset()
    assert histogram.count == 0


def test_time_series_buckets_by_interval():
    series = TimeSeries(name="tput", bucket_width=5.0)
    series.record(1.0, 10)
    series.record(4.0, 10)
    series.record(6.0, 5)
    assert series.buckets() == [(0.0, 20.0), (5.0, 5.0)]
    assert series.rate_series()[0] == (0.0, 4.0)


def test_metrics_registry_snapshot_and_reset():
    registry = MetricsRegistry()
    registry.counter("x").increment(3)
    registry.histogram("y").observe(2.0)
    snapshot = registry.snapshot()
    assert snapshot["x"] == 3
    assert snapshot["y.mean"] == 2.0
    registry.reset()
    assert registry.counter("x").value == 0


def test_deterministic_rng_reproducible_and_forked_streams_differ():
    a1 = DeterministicRng(42).fork("x")
    a2 = DeterministicRng(42).fork("x")
    b = DeterministicRng(42).fork("y")
    seq1 = [a1.random() for _ in range(5)]
    seq2 = [a2.random() for _ in range(5)]
    seq3 = [b.random() for _ in range(5)]
    assert seq1 == seq2
    assert seq1 != seq3


def test_zipf_cdf_is_monotone_and_normalised():
    table = zipf_cdf(100, 0.99)
    assert len(table) == 100
    assert all(earlier <= later for earlier, later in zip(table, table[1:]))
    assert table[-1] == pytest.approx(1.0)


def test_zipf_sampling_prefers_low_indices():
    rng = DeterministicRng(5)
    table = zipf_cdf(1000, 0.99)
    samples = [rng.zipf_index(1000, table=table) for _ in range(2000)]
    low = sum(1 for s in samples if s < 100)
    assert low > len(samples) * 0.4
