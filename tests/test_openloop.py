"""Open-loop traffic engine tests.

Covers the arrival-process layer (termination at the horizon, the
think_time=0 closed-loop refusal), the time-varying load DSL
(:class:`LoadPhase`/:class:`LoadProfile`), the
:class:`OpenLoopClientPool` actor (offered rate matches the configured
rate at a golden seed), the duration-aware latency summary, and the SLO
oracle's breach-episode tracking through the overload scenario family.
"""

from dataclasses import replace
from typing import List

import pytest

from repro.core.client import OpenLoopClientPool
from repro.core.config import SpotLessConfig
from repro.core.messages import InformMessage
from repro.scenarios import (
    ScenarioSpec,
    SloBreach,
    SloSpec,
    overload_spec,
    run_scenario,
)
from repro.sim.actor import Actor
from repro.sim.engine import Simulator
from repro.sim.metrics import Histogram, summarize_latency
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import DeterministicRng
from repro.workload.arrival import (
    ArrivalProcess,
    ClosedLoopLoad,
    LoadPhase,
    LoadProfile,
    MmppLoad,
    OpenLoopLoad,
    overload_profile,
)
from repro.workload.requests import Transaction
from repro.workload.ycsb import YcsbConfig, YcsbWorkload


# ---------------------------------------------------------------------------
# arrival processes: termination and the think_time=0 refusal
# ---------------------------------------------------------------------------


def test_open_loop_arrivals_terminate_and_strictly_advance():
    load = OpenLoopLoad(rate_per_second=1000.0, rng=DeterministicRng(7))
    arrivals = list(load.arrivals(horizon=0.5))
    assert 300 < len(arrivals) < 800
    assert all(0 < t <= 0.5 for t in arrivals)
    assert all(a < b for a, b in zip(arrivals, arrivals[1:]))


def test_mmpp_arrivals_terminate_and_mean_rate_sits_between_states():
    load = MmppLoad(rate_low=100.0, rate_high=2000.0, rng=DeterministicRng(9))
    arrivals = list(load.arrivals(horizon=2.0))
    assert arrivals, "a positive-rate MMPP must emit arrivals"
    assert all(0 < t <= 2.0 for t in arrivals)
    assert all(a < b for a, b in zip(arrivals, arrivals[1:]))
    assert 100.0 < load.mean_rate() < 2000.0


def test_closed_loop_with_think_time_terminates_at_the_horizon():
    load = ClosedLoopLoad(clients=4, think_time=0.1)
    arrivals = list(load.arrivals(horizon=1.0))
    # Spacing is think_time / clients = 25 ms: ~40 arrivals fit in a second
    # (float accumulation may push the last one just past the horizon).
    assert len(arrivals) in (39, 40)
    assert all(0 < t <= 1.0 for t in arrivals)
    assert all(a < b for a, b in zip(arrivals, arrivals[1:]))


def test_closed_loop_zero_think_time_refuses_an_arrival_process():
    load = ClosedLoopLoad(clients=8, think_time=0.0)
    with pytest.raises(ValueError, match="offered_concurrency"):
        load.arrivals(horizon=1.0)
    # The concurrency window remains the way to drive this configuration.
    assert load.offered_concurrency() == 8


def test_non_advancing_arrival_process_raises_instead_of_spinning():
    class StuckProcess(ArrivalProcess):
        def inter_arrival(self) -> float:
            return 0.0

    with pytest.raises(ValueError, match="strictly advance"):
        list(StuckProcess().arrivals(horizon=1.0))


def test_mmpp_validation():
    with pytest.raises(ValueError):
        MmppLoad(rate_low=0.0, rate_high=100.0)
    with pytest.raises(ValueError):
        MmppLoad(rate_low=100.0, rate_high=200.0, mean_dwell_low=0.0)


# ---------------------------------------------------------------------------
# the load DSL: phases and profiles
# ---------------------------------------------------------------------------


def test_load_phase_validation():
    with pytest.raises(ValueError):
        LoadPhase(shape="sawtooth", rate=100.0, duration=1.0)
    with pytest.raises(ValueError):
        LoadPhase(shape="hold", rate=-1.0, duration=1.0)
    with pytest.raises(ValueError):
        LoadPhase(shape="hold", rate=100.0, duration=0.0)


def test_load_profile_requires_some_offered_load():
    with pytest.raises(ValueError):
        LoadProfile(phases=())
    with pytest.raises(ValueError):
        LoadProfile(phases=(LoadPhase(shape="hold", rate=0.0, duration=1.0),))


def test_ramp_interpolates_from_the_previous_phase_rate():
    profile = LoadProfile(
        phases=(
            LoadPhase(shape="ramp", rate=1000.0, duration=1.0),
            LoadPhase(shape="hold", rate=1000.0, duration=1.0),
            LoadPhase(shape="ramp", rate=200.0, duration=1.0),
        )
    )
    # First ramp starts from rate 0.
    assert profile.rate_at(0.5) == pytest.approx(500.0)
    assert profile.rate_at(1.5) == pytest.approx(1000.0)
    # Second ramp starts from the hold's 1000/s and descends.
    assert profile.rate_at(2.5) == pytest.approx(600.0)
    # The profile quiesces past its end.
    assert profile.rate_at(3.5) == 0.0
    assert profile.rate_at(-0.1) == 0.0
    assert profile.duration() == pytest.approx(3.0)
    assert profile.peak_rate() == pytest.approx(1000.0)


def test_profile_phase_windows_partition_the_schedule():
    profile = overload_profile(
        base_rate=100.0, spike_rate=400.0, ramp=0.1, hold=0.1, spike=0.1, drain=0.2, recovery=0.2
    )
    windows = profile.phase_windows()
    assert len(windows) == 6
    assert windows[0][0] == 0.0
    for (_, end_a, _), (start_b, _, _) in zip(windows, windows[1:]):
        assert end_a == pytest.approx(start_b)
    assert windows[-1][1] == pytest.approx(profile.duration())
    assert profile.phase_at(0.25).shape == "spike"
    assert profile.phase_at(profile.duration() + 1.0) is None


def test_scaled_profile_multiplies_rates_but_keeps_the_shape():
    profile = LoadProfile.constant(rate=500.0, duration=2.0)
    half = profile.scaled(0.5)
    assert half.rate_at(1.0) == pytest.approx(250.0)
    assert half.duration() == pytest.approx(2.0)
    with pytest.raises(ValueError):
        profile.scaled(0.0)


def test_overload_profile_requires_a_real_spike():
    with pytest.raises(ValueError):
        overload_profile(
            base_rate=500.0, spike_rate=500.0, ramp=0.1, hold=0.1, spike=0.1, drain=0.1, recovery=0.1
        )


def test_load_profile_json_round_trip():
    profile = overload_profile(
        base_rate=880.0, spike_rate=4400.0, ramp=0.1, hold=0.1, spike=0.1, drain=0.3, recovery=0.3
    )
    assert LoadProfile.from_json_dict(profile.to_json_dict()) == profile


# ---------------------------------------------------------------------------
# duration-aware latency summaries
# ---------------------------------------------------------------------------


def test_summarize_latency_divides_by_the_measurement_window():
    histogram = Histogram("latency")
    for _ in range(100):
        histogram.observe(0.01)
    sample = summarize_latency(histogram, duration=2.0)
    assert sample.throughput == pytest.approx(50.0)
    assert sample.latency == pytest.approx(0.01)


def test_summarize_latency_rejects_non_positive_durations():
    histogram = Histogram("latency")
    histogram.observe(0.01)
    with pytest.raises(ValueError):
        summarize_latency(histogram, duration=0.0)


def test_summarize_latency_returns_none_without_samples():
    assert summarize_latency(Histogram("latency"), duration=1.0) is None


# ---------------------------------------------------------------------------
# the open-loop client pool
# ---------------------------------------------------------------------------


class _EchoReplica(Actor):
    """Answers every transaction with one Inform after a fixed delay."""

    def __init__(self, node_id, simulator, network, delay=0.001):
        super().__init__(node_id, simulator, network)
        self.delay = delay
        self.received: List[Transaction] = []

    def on_message(self, sender, payload):
        if not isinstance(payload, Transaction):
            return
        self.received.append(payload)
        inform = InformMessage(
            replica=self.node_id,
            client_id=payload.client_id,
            transaction_digest=payload.digest(),
        )
        self.call_later(self.delay, lambda msg=inform, target=sender: self.send(target, msg, 200))


def _pool_setup(arrival, simulated_users=0):
    simulator = Simulator()
    network = Network(simulator, NetworkConfig(base_delay=0.0005, jitter=0.0))
    config = SpotLessConfig(num_replicas=4)
    replicas = [
        _EchoReplica(node_id=replica_id, simulator=simulator, network=network)
        for replica_id in range(4)
    ]
    workload = YcsbWorkload(YcsbConfig(record_count=1000), rng=DeterministicRng(3))
    pool = OpenLoopClientPool(
        client_id=0,
        config=config,
        simulator=simulator,
        network=network,
        workload=workload,
        arrival=arrival,
        simulated_users=simulated_users,
        rng=DeterministicRng(5),
    )
    return simulator, replicas, pool


def test_pool_offered_rate_matches_the_configured_rate_at_a_golden_seed():
    rate = 2000.0
    simulator, _replicas, pool = _pool_setup(
        OpenLoopLoad(rate_per_second=rate, rng=DeterministicRng(5))
    )
    pool.start()
    simulator.run_for(1.0)
    # Poisson counting fluctuation at n=2000 is ~45; 10 % is a loose bound
    # that still catches a rate bug (off by a factor, not by noise).
    assert pool.offered_transactions == pytest.approx(rate, rel=0.10)
    # All replicas answer, so the pool confirms what it offers.
    assert pool.confirmed_transactions == pytest.approx(pool.offered_transactions, abs=20)


def test_pool_profile_thinning_matches_the_constant_rate():
    rate = 1500.0
    simulator, _replicas, pool = _pool_setup(LoadProfile.constant(rate=rate, duration=1.0))
    pool.start()
    simulator.run_for(2.0)
    assert pool.offered_transactions == pytest.approx(rate, rel=0.10)


def test_pool_quiesces_after_the_profile_ends():
    simulator, _replicas, pool = _pool_setup(LoadProfile.constant(rate=1000.0, duration=0.5))
    pool.start()
    simulator.run_for(0.5)
    offered_at_end_of_schedule = pool.offered_transactions
    simulator.run_for(1.0)
    assert pool.offered_transactions == offered_at_end_of_schedule
    # With the schedule over and every request answered, the queue drains.
    assert pool.unconfirmed_count() == 0


def test_pool_confirmations_do_not_trigger_resubmission():
    simulator, replicas, pool = _pool_setup(LoadProfile.constant(rate=500.0, duration=0.4))
    pool.start()
    simulator.run_for(1.0)
    # Closed-loop clients resubmit on confirm; the open loop must not — every
    # transaction a replica saw was offered by the arrival schedule.
    digests_seen = {t.digest() for t in replicas[0].received}
    assert len(digests_seen) == pool.offered_transactions


def test_pool_simulated_users_is_descriptive_not_structural():
    simulator, _replicas, pool = _pool_setup(
        OpenLoopLoad(rate_per_second=200.0, rng=DeterministicRng(5)),
        simulated_users=1_000_000,
    )
    pool.start()
    simulator.run_for(0.5)
    assert pool.simulated_users == 1_000_000
    # One self-scheduling arrival chain: events stay O(arrivals), not O(users).
    assert pool.offered_transactions < 1000


# ---------------------------------------------------------------------------
# the SLO oracle through the overload scenario family
# ---------------------------------------------------------------------------


def test_overload_scenario_breaches_the_slo_and_recovers():
    result = run_scenario(overload_spec("spotless", duration=1.0))
    assert result.violations == ()
    assert result.slo_breaches, "the spike must trip at least one SLO episode"
    assert all(breach.recovered for breach in result.slo_breaches)
    spike_start = result.spec.load.phase_windows()[2][0]
    assert any(breach.started_at >= spike_start for breach in result.slo_breaches)


def test_enforce_mode_turns_every_breach_episode_into_a_violation():
    spec = overload_spec("spotless", duration=1.0)
    spec = replace(spec, slo=replace(spec.slo, mode="enforce"))
    result = run_scenario(spec)
    slo_violations = [v for v in result.violations if v.invariant.startswith("slo-")]
    assert slo_violations, "enforce mode must flag the spike-induced breach"


def test_require_breach_flags_a_run_that_never_saturates():
    # 2 % / 4 % of spotless capacity: the "spike" is far below saturation.
    spec = overload_spec("spotless", base_rate=40.0, spike_rate=90.0, duration=1.0)
    result = run_scenario(spec)
    assert [v.invariant for v in result.violations] == ["slo-no-breach"]
    assert result.slo_breaches == ()


def test_slo_spec_and_breach_json_round_trip():
    slo = SloSpec(p99_ceiling=0.05, max_queue_depth=400, mode="expect-recovery", require_breach=True)
    assert SloSpec.from_json_dict(slo.to_json_dict()) == slo
    breach = SloBreach(metric="p99", ceiling=0.05, started_at=0.3, ended_at=0.7, peak=0.12)
    assert SloBreach.from_json_dict(breach.to_json_dict()) == breach
    with pytest.raises(ValueError):
        SloSpec(mode="enforce")  # no ceiling at all
    with pytest.raises(ValueError):
        SloSpec(p99_ceiling=0.05, mode="sometimes")


def test_overload_spec_json_round_trip_preserves_load_and_slo():
    spec = overload_spec("pbft", duration=1.0)
    rebuilt = ScenarioSpec.from_json_dict(spec.to_json_dict())
    assert rebuilt == spec
    assert rebuilt.load == spec.load
    assert rebuilt.slo == spec.slo
    assert rebuilt.fault_label() == "overload"
